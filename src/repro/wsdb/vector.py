"""The columnar mobile-client engine: million-client fleets on numpy.

The scalar drivers (:func:`~repro.wsdb.mobility.simulate_roaming`,
:func:`~repro.wsdb.cluster.querystorm.simulate_querystorm`) walk a
Python object per client per tick — perfectly clear, and capped around
10^3 clients.  This module holds the whole fleet in columns instead
(positions, waypoints, cached-response ids, trigger cells, TTL buckets,
assigned APs, per-client counters — one numpy array each) and batches
the per-tick hot path as array ops:

* **Waypoint advance** — the common case (the tick ends before the
  current leg does) is one fused array expression; the rare
  waypoint-crossing walkers fall back to the scalar
  :func:`~repro.wsdb.mobility.advance_position` with their own
  per-client RNGs, so waypoint draws replay the exact scalar streams.
* **Re-check detection** — 100 m square crossings and TTL expiry via
  integer cell arithmetic (``floor(x / recheck_m)`` per axis), one
  compare per trigger.
* **Grouped DB lookups** — the tick's re-checkers submit their cells in
  client order through
  :meth:`~repro.wsdb.service.WhiteSpaceDatabase.channels_in_cells`; the
  (cell, TTL-bucket) response cache is the memoization, so N clients in
  one cell cost one computed response, and the database sees the exact
  query sequence the scalar loop would send (cache stats match to the
  eviction).
* **Response interning** — distinct response tuples intern to small
  ids; eligibility (``ap_spans <= response``) is a (responses x APs)
  bool table rebuilt only when the AP snapshot changes, and a tick's
  per-client eligibility is one fancy-index into it.
* **Association** — nearest eligible AP by running elementwise minimum
  over the live-AP columns in ascending ``ap_id`` order with a strict
  ``<`` update: exactly the scalar ``min`` under the squared-distance
  + ``ap_id`` key.  Mic-zone vacation is the same eligibility table
  applied to the previous tick's AP column, as one mask.
* **Compliance** — per active incumbent, a squared-form coverage mask
  (:func:`~repro.wsdb.model.point_in_circle`'s algebra, elementwise)
  ANDed with "the client's AP spans this incumbent's channel".

**The bit-identity contract.**  Every float the hot path produces goes
through +, -, *, /, sqrt, and floor only — all correctly-rounded
IEEE-754 operations — in the same operand order as the scalar engine,
so positions, distances, and cell ids are bit-identical, not merely
close.  Everything order-sensitive on the service side (LRU cache,
token-bucket admission, push subscribe/notify) is driven in the scalar
engine's exact call order.  The reports returned here compare equal
(``==``) to the scalar engine's, field for field, including the nested
db/frontend/push stats — the property ``tests/wsdb/test_vector.py``
sweeps seeds x fleet sizes x speeds to pin.
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from repro.sim.rng import stream_seed
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.telemetry.profiler import NULL_PROFILER
from repro.telemetry.spans import NULL_SPANS, lookup_steps
from repro.wsdb.citywide import (
    DEFAULT_INTERFERENCE_RADIUS_M,
    boot_aps,
    displace_covered_aps,
    generate_mic_events,
    snapshot_assigned_aps,
)
from repro.wsdb.mobility import (
    DEFAULT_SPEED_MPS,
    DEFAULT_TICK_US,
    RoamingClient,
    advance_position,
    spawn_clients,
)
from repro.traces.record import NULL_RECORDER
from repro.wsdb.service import WhiteSpaceDatabase, quantize_cell, ttl_bucket

__all__ = [
    "VectorFleet",
    "simulate_querystorm_vector",
    "simulate_roaming_vector",
]

#: Sentinel for "no cell observed yet" in the trigger-cell columns;
#: far outside any reachable quantization cell, so the first tick's
#: comparison always fires (the scalar engine's ``last_cell = None``).
_NO_CELL = np.iinfo(np.int64).min


class VectorFleet:
    """Columnar state for a fleet of waypoint-walking mobile clients.

    Built from the same :func:`~repro.wsdb.mobility.spawn_clients`
    output the scalar engine iterates, so initial positions, waypoints,
    and the per-client RNG objects (kept for waypoint-crossing draws)
    are shared by construction.
    """

    def __init__(self, clients: list[RoamingClient], extent_m: float):
        self.n = len(clients)
        self.extent_m = extent_m
        self.x = np.array([c.x_m for c in clients], dtype=np.float64)
        self.y = np.array([c.y_m for c in clients], dtype=np.float64)
        self.wx = np.array([c.waypoint[0] for c in clients], dtype=np.float64)
        self.wy = np.array([c.waypoint[1] for c in clients], dtype=np.float64)
        self.rngs = [c.rng for c in clients]
        # Cached-response ids into the intern table; id 0 is the
        # "never queried" empty response every client starts with.
        self.resp_id = np.zeros(self.n, dtype=np.int64)
        self.last_tx = np.full(self.n, _NO_CELL, dtype=np.int64)
        self.last_ty = np.full(self.n, _NO_CELL, dtype=np.int64)
        self.last_bucket = np.full(self.n, -1, dtype=np.int64)
        self.prev_ap = np.full(self.n, -1, dtype=np.int64)
        self.requeries = np.zeros(self.n, dtype=np.int64)
        self.handoffs = np.zeros(self.n, dtype=np.int64)
        self.vacations = np.zeros(self.n, dtype=np.int64)
        self.connected = np.zeros(self.n, dtype=np.int64)
        self.violations = np.zeros(self.n, dtype=np.int64)
        self.disconnected_ticks = 0
        # Response interning: distinct response tuples -> small ids.
        self._responses: list[frozenset[int]] = [frozenset()]
        self._resp_ids: dict[tuple[int, ...], int] = {(): 0}
        # Snapshot-dependent state (set_snapshot).
        self._live_ids = np.zeros(0, dtype=np.int64)
        self._ap_x = np.zeros(0, dtype=np.float64)
        self._ap_y = np.zeros(0, dtype=np.float64)
        self._live_spans: list[frozenset[int]] = []
        self._col_of: np.ndarray = np.full(1, -1, dtype=np.int64)
        self._elig = np.zeros((1, 0), dtype=bool)
        self._uhf_cols: dict[int, np.ndarray] = {}

    # -- AP snapshot ---------------------------------------------------------

    def set_snapshot(
        self,
        live_aps: list[tuple[Any, frozenset[int]]],
        num_aps: int,
    ) -> None:
        """Columnarize one ``snapshot_assigned_aps`` live list.

        Rebuilds the eligibility table for every interned response and
        drops the per-channel span masks (both are pure functions of
        the snapshot + intern table).
        """
        self._live_ids = np.array(
            [ap.ap_id for ap, _ in live_aps], dtype=np.int64
        )
        self._ap_x = np.array([ap.x_m for ap, _ in live_aps], dtype=np.float64)
        self._ap_y = np.array([ap.y_m for ap, _ in live_aps], dtype=np.float64)
        self._live_spans = [spans for _, spans in live_aps]
        self._col_of = np.full(max(1, num_aps), -1, dtype=np.int64)
        for col, (ap, _) in enumerate(live_aps):
            self._col_of[ap.ap_id] = col
        self._elig = self._elig_rows(self._responses)
        self._uhf_cols = {}

    def _elig_rows(self, responses: list[frozenset[int]]) -> np.ndarray:
        rows = [
            [spans <= resp for spans in self._live_spans]
            for resp in responses
        ]
        return np.array(rows, dtype=bool).reshape(
            len(responses), len(self._live_spans)
        )

    def intern(self, response: tuple[int, ...]) -> int:
        """The id of *response*, creating one (plus its eligibility row)."""
        rid = self._resp_ids.get(response)
        if rid is None:
            rid = len(self._responses)
            resp_set = frozenset(response)
            self._responses.append(resp_set)
            self._resp_ids[response] = rid
            self._elig = np.concatenate(
                [self._elig, self._elig_rows([resp_set])]
            )
        return rid

    def _spans_cols(self, uhf_index: int) -> np.ndarray:
        """Bool per live-AP column: does its channel span *uhf_index*?"""
        mask = self._uhf_cols.get(uhf_index)
        if mask is None:
            mask = np.array(
                [uhf_index in spans for spans in self._live_spans],
                dtype=bool,
            )
            self._uhf_cols[uhf_index] = mask
        return mask

    # -- per-tick batched stages ---------------------------------------------

    def advance(self, step_m: float) -> None:
        """Advance every walker by *step_m* along its waypoint path.

        The non-crossing fast path is the scalar loop's else-branch
        arithmetic (``pos += delta / leg * step``) elementwise; walkers
        whose leg ends within the tick replay the exact scalar
        :func:`advance_position` (their RNG draws must consume the same
        stream values the scalar engine would).
        """
        x, y, wx, wy = self.x, self.y, self.wx, self.wy
        dx = wx - x
        dy = wy - y
        leg = np.sqrt(dx * dx + dy * dy)
        crossing = leg <= step_m
        cross_idx = np.flatnonzero(crossing)
        if cross_idx.size:
            far = ~crossing
            x[far] += dx[far] / leg[far] * step_m
            y[far] += dy[far] / leg[far] * step_m
            extent = self.extent_m
            for i in cross_idx.tolist():
                xi, yi, wxi, wyi = advance_position(
                    float(x[i]),
                    float(y[i]),
                    float(wx[i]),
                    float(wy[i]),
                    self.rngs[i],
                    step_m,
                    extent,
                )
                x[i] = xi
                y[i] = yi
                wx[i] = wxi
                wy[i] = wyi
        else:
            x += dx / leg * step_m
            y += dy / leg * step_m

    def cells(self, resolution_m: float) -> tuple[np.ndarray, np.ndarray]:
        """Quantization cells of every client at *resolution_m*.

        ``floor(x / res)`` per axis — float division and floor are
        correctly rounded, and the result is integral, so the int64
        cast equals the scalar ``quantize_cell`` exactly.
        """
        qx = np.floor(self.x / resolution_m).astype(np.int64)
        qy = np.floor(self.y / resolution_m).astype(np.int64)
        return qx, qy

    def recheck_due(
        self, trig_x: np.ndarray, trig_y: np.ndarray, bucket: int
    ) -> np.ndarray:
        """Client indices due a re-check (crossed a square or TTL edge)."""
        need = (
            (trig_x != self.last_tx)
            | (trig_y != self.last_ty)
            | (self.last_bucket != bucket)
        )
        return np.flatnonzero(need)

    def commit_recheck(
        self,
        idx: np.ndarray,
        trig_x: np.ndarray,
        trig_y: np.ndarray,
        bucket: int,
        responses: list[tuple[int, ...]],
    ) -> None:
        """Adopt fresh responses for the re-checked clients *idx*."""
        rid = self.resp_id
        for j, i in enumerate(idx.tolist()):
            rid[i] = self.intern(responses[j])
        self.last_tx[idx] = trig_x[idx]
        self.last_ty[idx] = trig_y[idx]
        self.last_bucket[idx] = bucket
        self.requeries[idx] += 1

    def associate_and_score(
        self, metro, t_us: float, profiler: Any = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One tick of vacation, association, handoff, and compliance.

        Mirrors the scalar loop's per-client sequence exactly: vacate
        when the previous AP's spans are no longer permitted, associate
        with the nearest eligible AP (running min over ascending
        ``ap_id`` columns with strict ``<`` — the scalar tie-break),
        count handoffs/connected ticks, then score ground truth.

        Returns the tick's outcome arrays ``(connected, new_ap,
        best_col, handoff_mask, violating)`` — cheap references the
        trace-recording hooks read; counters are already applied.

        An optional wall-clock ``profiler`` splits the stage into its
        two phases ("associate", "compliance") — pure observation, the
        arrays are untouched.
        """
        prof = NULL_PROFILER if profiler is None else profiler
        with prof.phase("associate"):
            n_live = len(self._live_spans)
            m = self.n
            elig = self._elig[self.resp_id]  # (m, n_live) bool
            prev = self.prev_ap

            # Vacation: the previous AP (still assigned this snapshot)
            # whose spans the current response denies.
            prev_col = self._col_of[np.clip(prev, 0, None)]
            prev_col = np.where(prev >= 0, prev_col, -1)
            has_prev = prev_col >= 0
            prev_ok = np.zeros(m, dtype=bool)
            pi = np.flatnonzero(has_prev)
            if pi.size:
                prev_ok[pi] = elig[pi, prev_col[pi]]
            self.vacations[has_prev & ~prev_ok] += 1

            # Association: running elementwise min over live-AP columns.
            best = np.full(m, np.inf)
            best_col = np.full(m, -1, dtype=np.int64)
            for col in range(n_live):
                ddx = self._ap_x[col] - self.x
                ddy = self._ap_y[col] - self.y
                d2 = ddx * ddx + ddy * ddy
                d2[~elig[:, col]] = np.inf
                better = d2 < best
                best[better] = d2[better]
                best_col[better] = col
            connected = best_col >= 0
            if n_live:
                new_ap = np.where(
                    connected, self._live_ids[np.clip(best_col, 0, None)], -1
                )
            else:
                new_ap = np.full(m, -1, dtype=np.int64)
            self.disconnected_ticks += int(np.count_nonzero(~connected))
            handoff_mask = (prev >= 0) & connected & (new_ap != prev)
            self.handoffs[handoff_mask] += 1
            self.connected[connected] += 1
            self.prev_ap = new_ap

        with prof.phase("compliance"):
            # Compliance: per active incumbent, a coverage mask ANDed
            # with "this client's AP spans the incumbent's channel".
            violating = np.zeros(m, dtype=bool)
            ap_col = np.clip(best_col, 0, None)
            for entry in (*metro.sites, *metro.registrations):
                if not entry.active_at(t_us):
                    continue
                span_cols = self._spans_cols(entry.uhf_index)
                if not span_cols.any():
                    continue
                cand = np.flatnonzero(connected & span_cols[ap_col])
                if not cand.size:
                    continue
                cdx = self.x[cand] - entry.x_m
                cdy = self.y[cand] - entry.y_m
                radius = entry.radius_m
                covered = cdx * cdx + cdy * cdy <= radius * radius
                violating[cand[covered]] = True
            self.violations[violating] += 1
        return connected, new_ap, best_col, handoff_mask, violating


def _record_mic_event(recorder, event, index: int, resolution_m: float):
    """The mic emission shared with the scalar drivers (same stamps)."""
    mic_cell = quantize_cell(event.x_m, event.y_m, resolution_m)
    recorder.emit(
        "mic",
        event.t_us,
        subject=index,
        cell=mic_cell,
        channels=(event.uhf_index,),
        x=event.x_m,
        y=event.y_m,
        aux=event.uhf_index,
    )
    return mic_cell


def _record_association_tick(
    recorder,
    fleet: VectorFleet,
    tick,
    trig_x: np.ndarray,
    trig_y: np.ndarray,
    t_us: float,
    viol_open: np.ndarray,
) -> None:
    """Emit handoff and violation-window events for one fleet tick.

    The stamps (trigger cell, exact position, sorted AP spans) match
    the scalar loop's emissions value-for-value, so both engines'
    sorted streams are identical.
    """
    _connected, new_ap, best_col, handoff_mask, violating = tick
    x, y = fleet.x, fleet.y
    for i in np.flatnonzero(handoff_mask).tolist():
        recorder.emit(
            "handoff",
            t_us,
            subject=i,
            cell=(int(trig_x[i]), int(trig_y[i])),
            channels=tuple(sorted(fleet._live_spans[int(best_col[i])])),
            x=float(x[i]),
            y=float(y[i]),
            aux=int(new_ap[i]),
        )
    opens = np.flatnonzero(violating & ~viol_open)
    closes = np.flatnonzero(viol_open & ~violating)
    for i in opens.tolist():
        recorder.emit(
            "violation_open",
            t_us,
            subject=i,
            cell=(int(trig_x[i]), int(trig_y[i])),
            channels=tuple(sorted(fleet._live_spans[int(best_col[i])])),
            x=float(x[i]),
            y=float(y[i]),
        )
    for i in closes.tolist():
        recorder.emit(
            "violation_close",
            t_us,
            subject=i,
            cell=(int(trig_x[i]), int(trig_y[i])),
            x=float(x[i]),
            y=float(y[i]),
            aux=0,
        )
    viol_open[opens] = True
    viol_open[closes] = False


def _record_end_closes(
    recorder,
    fleet: VectorFleet,
    viol_open: np.ndarray,
    end_us: float,
    recheck_m: float,
) -> None:
    """Close still-open violation windows at end of run (aux=1)."""
    trig_x, trig_y = fleet.cells(recheck_m)
    for i in np.flatnonzero(viol_open).tolist():
        recorder.emit(
            "violation_close",
            end_us,
            subject=i,
            cell=(int(trig_x[i]), int(trig_y[i])),
            x=float(fleet.x[i]),
            y=float(fleet.y[i]),
            aux=1,
        )


def _fleet_report(
    fleet: VectorFleet, ticks: int, recheck_m: float
) -> dict[str, Any]:
    """The per-client accounting block shared by both vector drivers."""
    requeries = fleet.requeries.tolist()
    handoffs = fleet.handoffs.tolist()
    vacations = fleet.vacations.tolist()
    connected = fleet.connected.tolist()
    connected_ticks = sum(connected)
    violation_ticks = int(fleet.violations.sum())
    client_ticks = fleet.n * (ticks + 1)
    qx, qy = fleet.cells(recheck_m)
    return {
        "requeries": sum(requeries),
        "handoffs": sum(handoffs),
        "vacations": sum(vacations),
        "connected_ticks": connected_ticks,
        "disconnected_ticks": fleet.disconnected_ticks,
        "violation_ticks": violation_ticks,
        "client_ticks": client_ticks,
        "per_client": tuple(
            (i, requeries[i], handoffs[i], vacations[i], connected[i])
            for i in range(fleet.n)
        ),
        "final_cells": tuple(zip(qx.tolist(), qy.tolist())),
    }


# detlint: ok[DET005] profiler times tick phases only; every published metric value is sim-clock data and reports are byte-identical with profiling on (tests/telemetry/test_determinism.py)
def simulate_roaming_vector(
    db: WhiteSpaceDatabase,
    num_aps: int,
    num_clients: int,
    duration_us: float,
    seed: int,
    speed_mps: float = DEFAULT_SPEED_MPS,
    recheck_m: float | None = None,
    mic_events: int = 0,
    tick_us: float = DEFAULT_TICK_US,
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
    recorder: Any = None,
    telemetry: Any = None,
    profiler: Any = None,
    spans: Any = None,
) -> dict[str, Any]:
    """The columnar twin of :func:`~repro.wsdb.mobility.simulate_roaming`.

    Same world construction (shared ``boot_aps`` / ``spawn_clients`` /
    ``generate_mic_events`` off the same labelled streams), same tick
    semantics, bit-identical report — and, given a ``recorder``, the
    identical trace event stream (the scalar loop interleaves its hooks
    per client, this engine per stage; canonical trace ordering makes
    the sorted streams equal).  Reached via
    ``simulate_roaming(..., engine="vector")``; calling it directly
    skips nothing but the argument validation.

    ``telemetry`` (sim-clock, deterministic, snapshot-identical to the
    scalar engine's) and ``profiler`` (wall-clock phase breakdown of
    the batched tick stages: advance / recheck-detect / batch-lookup /
    associate / compliance) both observe only — the report is
    unchanged except for the ``"telemetry"`` snapshot key.  ``spans``
    records the identical span set the scalar engine emits (the batch
    lookup's per-cell outcomes are replayed per client in client
    order).
    """
    if recheck_m is None:
        recheck_m = db.cache_resolution_m
    if recorder is None:
        recorder = NULL_RECORDER
    recording = recorder.enabled
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    tel_on = tel.enabled
    sp = NULL_SPANS if spans is None else spans
    sp_on = sp.enabled
    prof = NULL_PROFILER if profiler is None else profiler
    extent_m = db.metro.extent_m
    aps = boot_aps(db, num_aps, seed, "roaming-aps", interference_radius_m)
    fleet = VectorFleet(
        spawn_clients(num_clients, seed, "roaming-client", extent_m), extent_m
    )

    events = generate_mic_events(
        mic_events,
        duration_us,
        extent_m,
        db.metro.num_channels,
        stream_seed(seed, "roaming-mics"),
    )
    next_event = 0
    displaced = backup_recoveries = full_reassignments = outages = 0

    def register_event(event, index: int) -> None:
        nonlocal displaced, backup_recoveries, full_reassignments, outages
        registration = event.registration()
        invalidated = db.register_mic(registration)
        if sp_on:
            sp.record_tree(
                "mic_register",
                "mic",
                index,
                event.t_us,
                "db",
                [("invalidate", "db", {"entries": int(invalidated)}, ())],
            )
        if recording:
            _record_mic_event(recorder, event, index, db.cache_resolution_m)
        d, b, r, o = displace_covered_aps(
            db, aps, event, registration, interference_radius_m
        )
        displaced += d
        backup_recoveries += b
        full_reassignments += r
        outages += o

    live_aps, _ = snapshot_assigned_aps(aps)
    fleet.set_snapshot(live_aps, num_aps)

    aligned = recheck_m == db.cache_resolution_m
    step_m = speed_mps * tick_us / 1e6
    ticks = int(duration_us // tick_us)
    viol_open = np.zeros(fleet.n, dtype=bool)
    for k in range(ticks + 1):
        t_us = k * tick_us
        fired = False
        while next_event < len(events) and events[next_event].t_us <= t_us:
            register_event(events[next_event], next_event)
            next_event += 1
            fired = True
        if fired:
            live_aps, _ = snapshot_assigned_aps(aps)
            fleet.set_snapshot(live_aps, num_aps)

        if k > 0:
            with prof.phase("advance"):
                fleet.advance(step_m)

        # The re-check rule, batched: due clients submit their *query*
        # cells (the database's own resolution, which the trigger
        # granularity need not match) in client order — the exact
        # sequence the scalar per-client loop sends.
        with prof.phase("recheck-detect"):
            trig_x, trig_y = fleet.cells(recheck_m)
            bucket = ttl_bucket(t_us, db.ttl_us)
            idx = fleet.recheck_due(trig_x, trig_y, bucket)
        if idx.size:
            with prof.phase("batch-lookup"):
                if aligned:
                    qx, qy = trig_x, trig_y
                else:
                    qx, qy = fleet.cells(db.cache_resolution_m)
                cells = list(zip(qx[idx].tolist(), qy[idx].tolist()))
                responses = db.channels_in_cells(cells, t_us)
                fleet.commit_recheck(idx, trig_x, trig_y, bucket, responses)
            if sp_on:
                # Replay the batch's per-cell outcomes per client in
                # client order — the scalar loop's exact span sequence.
                outs = db.last_outcomes
                for j, i in enumerate(idx.tolist()):
                    hit, scanned = outs[j]
                    sp.record_tree(
                        "request",
                        "roam",
                        i,
                        t_us,
                        "db",
                        [lookup_steps(hit, scanned, "db")],
                    )
            if recording:
                for j, i in enumerate(idx.tolist()):
                    recorder.emit(
                        "recheck",
                        t_us,
                        subject=i,
                        cell=cells[j],
                        channels=responses[j],
                        x=float(fleet.x[i]),
                        y=float(fleet.y[i]),
                        aux=1,
                    )

        tick = fleet.associate_and_score(db.metro, t_us, profiler=prof)
        if recording:
            _record_association_tick(
                recorder, fleet, tick, trig_x, trig_y, t_us, viol_open
            )

        if tel_on:
            tel.sample_tick(
                t_us,
                queries=db.stats.queries,
                cache_hits=db.stats.cache_hits,
                requeries=int(fleet.requeries.sum()),
                handoffs=int(fleet.handoffs.sum()),
                violating=int(tick[4].sum()),
            )

    if recording:
        _record_end_closes(
            recorder, fleet, viol_open, ticks * tick_us, recheck_m
        )

    while next_event < len(events):
        register_event(events[next_event], next_event)
        next_event += 1

    tallies = _fleet_report(fleet, ticks, recheck_m)
    connected_ticks = tallies["connected_ticks"]
    violation_ticks = tallies["violation_ticks"]
    if tel_on:
        db.publish_metrics(tel)
        tel.counter("requeries").inc(tallies["requeries"])
        tel.counter("handoffs").inc(tallies["handoffs"])
        tel.counter("vacations").inc(tallies["vacations"])
        tel.counter("violation_ticks").inc(violation_ticks)
        tel.counter("connected_ticks").inc(connected_ticks)
        tel.counter("disconnected_ticks").inc(tallies["disconnected_ticks"])
    report = {
        "num_aps": num_aps,
        "num_clients": num_clients,
        "duration_us": duration_us,
        "tick_us": tick_us,
        "speed_mps": speed_mps,
        "recheck_m": recheck_m,
        "extent_m": extent_m,
        "assigned_aps": sum(1 for ap in aps if ap.channel is not None),
        "requeries": tallies["requeries"],
        "requeries_per_client": tallies["requeries"] / num_clients,
        "handoffs": tallies["handoffs"],
        "vacations": tallies["vacations"],
        "connected_ticks": connected_ticks,
        "disconnected_ticks": tallies["disconnected_ticks"],
        "connected_fraction": connected_ticks / tallies["client_ticks"],
        "violation_ticks": violation_ticks,
        "violation_free_fraction": (
            1.0 - violation_ticks / connected_ticks if connected_ticks else 1.0
        ),
        "mic_events": len(events),
        "displaced_aps": displaced,
        "backup_recoveries": backup_recoveries,
        "full_reassignments": full_reassignments,
        "outages": outages,
        "per_client": tallies["per_client"],
        "final_cells": tallies["final_cells"],
        "db": db.stats.as_dict(),
    }
    if tel_on:
        report["telemetry"] = tel.snapshot()
    if sp_on:
        report["spans"] = sp.snapshot()
    return report


# detlint: ok[DET005] profiler times tick phases only; every published metric value is sim-clock data and reports are byte-identical with profiling on (tests/telemetry/test_determinism.py)
def simulate_querystorm_vector(
    router,
    num_aps: int,
    num_clients: int,
    duration_us: float,
    seed: int,
    offered_qps: float = 0.0,
    push: bool = False,
    speed_mps: float = DEFAULT_SPEED_MPS,
    recheck_m: float | None = None,
    mic_events: int = 0,
    tick_us: float = DEFAULT_TICK_US,
    rate_limit_qps: float | None = None,
    burst_size: float | None = None,
    policy: str = "reject",
    interference_radius_m: float = DEFAULT_INTERFERENCE_RADIUS_M,
    storm_source: Any = None,
    recorder: Any = None,
    telemetry: Any = None,
    profiler: Any = None,
    spans: Any = None,
) -> dict[str, Any]:
    """The columnar twin of the cluster's ``simulate_querystorm``.

    Movement, re-check detection, association, and compliance are the
    batched fleet stages; everything whose *order* the cluster tier can
    observe stays sequential in the scalar engine's exact order — the
    storm burst, per-re-checker ``frontend.query`` calls (token-bucket
    admission is order-sensitive), and push-registry subscriptions
    (movers only: a same-cell re-subscribe is a stats-free no-op, so
    skipping it is unobservable).  Reached via
    ``simulate_querystorm(..., engine="vector")``.

    ``storm_source`` and ``recorder`` behave exactly as on the scalar
    driver: an explicit ``(t_us, x, y)`` workload replaces the
    synthetic generator, and a recorder captures the identical event
    stream the scalar engine would emit.  ``telemetry`` and
    ``profiler`` behave as on the vector roaming driver: deterministic
    sim-clock metrics (snapshot-identical to the scalar engine's) and
    a wall-clock phase breakdown, both observation-only.  ``spans``
    records the identical span set the scalar engine emits (burst and
    re-check submission order are already sequential here).
    """
    from repro.wsdb.cluster.frontend import BatchFrontend
    from repro.wsdb.cluster.push import PushRegistry
    from repro.wsdb.cluster.querystorm import StormFeed, synthetic_storm

    if recheck_m is None:
        recheck_m = router.cache_resolution_m
    if recorder is None:
        recorder = NULL_RECORDER
    recording = recorder.enabled
    tel = NULL_TELEMETRY if telemetry is None else telemetry
    tel_on = tel.enabled
    sp = NULL_SPANS if spans is None else spans
    sp_on = sp.enabled
    prof = NULL_PROFILER if profiler is None else profiler

    registry = PushRegistry(router.cache_resolution_m) if push else None
    frontend = BatchFrontend(
        router,
        rate_limit_qps=rate_limit_qps,
        burst_size=burst_size,
        policy=policy,
        push=registry,
        telemetry=tel,
        spans=sp,
    )

    extent_m = router.metro.extent_m
    aps = boot_aps(
        router, num_aps, seed, "querystorm-aps", interference_radius_m
    )
    fleet = VectorFleet(
        spawn_clients(num_clients, seed, "querystorm-client", extent_m),
        extent_m,
    )

    events = generate_mic_events(
        mic_events,
        duration_us,
        extent_m,
        router.metro.num_channels,
        stream_seed(seed, "querystorm-mics"),
    )
    next_event = 0
    displaced = backup_recoveries = full_reassignments = outages = 0
    deferred_requeries = 0
    push_refreshes = 0
    storm_queries = 0

    def register_event(event, index: int) -> tuple[int, ...]:
        nonlocal displaced, backup_recoveries, full_reassignments, outages
        registration = event.registration()
        notified = frontend.register_mic(
            registration,
            span_ref=(index, event.t_us) if sp_on else None,
        )
        if recording:
            mic_cell = _record_mic_event(
                recorder, event, index, router.cache_resolution_m
            )
            for device in notified:
                recorder.emit(
                    "push",
                    event.t_us,
                    subject=device,
                    cell=mic_cell,
                    channels=(event.uhf_index,),
                    aux=index,
                )
        d, b, r, o = displace_covered_aps(
            router, aps, event, registration, interference_radius_m
        )
        displaced += d
        backup_recoveries += b
        full_reassignments += r
        outages += o
        return notified

    live_aps, _ = snapshot_assigned_aps(aps)
    fleet.set_snapshot(live_aps, num_aps)

    step_m = speed_mps * tick_us / 1e6
    ticks = int(duration_us // tick_us)
    if storm_source is None:
        storm_source = synthetic_storm(
            offered_qps,
            tick_us,
            ticks,
            extent_m,
            random.Random(stream_seed(seed, "querystorm-load")),
        )
    feed = StormFeed(storm_source)
    storm_seq = 0
    viol_open = np.zeros(fleet.n, dtype=bool)
    # First-attempt timestamps for deferred re-checks: latency is
    # measured from the tick a client first needed a refresh, exactly
    # as in the scalar driver.
    pending_since: list[float | None] = [None] * fleet.n
    # Undelivered push notifications (cleared only once the refresh
    # query is admitted) and the registry-subscription shadow cells
    # (movers-only subscribe needs to know who moved).
    pushed = np.zeros(fleet.n, dtype=bool)
    sub_x = np.full(fleet.n, _NO_CELL, dtype=np.int64)
    sub_y = np.full(fleet.n, _NO_CELL, dtype=np.int64)
    for k in range(ticks + 1):
        t_us = k * tick_us
        fired = False
        while next_event < len(events) and events[next_event].t_us <= t_us:
            notified = register_event(events[next_event], next_event)
            if notified:
                pushed[list(notified)] = True
            next_event += 1
            fired = True
        if fired:
            live_aps, _ = snapshot_assigned_aps(aps)
            fleet.set_snapshot(live_aps, num_aps)

        # The storm burst goes first, exactly as in the scalar driver:
        # background load contends for admission tokens ahead of the
        # clients' re-checks.
        points = feed.burst(t_us)
        if points:
            span_refs = (
                [("storm", storm_queries + j) for j in range(len(points))]
                if sp_on
                else None
            )
            storm_queries += len(points)
            responses = frontend.query_batch(
                points,
                t_us,
                enqueue_t_us=feed.last_times,
                span_refs=span_refs,
            )
            if recording:
                for (x_m, y_m), response, (qcell, admitted) in zip(
                    points, responses, frontend.last_plan
                ):
                    recorder.emit(
                        "query",
                        t_us,
                        subject=storm_seq,
                        cell=qcell,
                        channels=response,
                        x=x_m,
                        y=y_m,
                        aux=int(admitted),
                    )
                    storm_seq += 1

        if k > 0:
            with prof.phase("advance"):
                fleet.advance(step_m)

        if registry is not None:
            rcx, rcy = fleet.cells(router.cache_resolution_m)
            moved = np.flatnonzero((rcx != sub_x) | (rcy != sub_y))
            for i in moved.tolist():
                registry.subscribe(i, int(rcx[i]), int(rcy[i]))
            sub_x[moved] = rcx[moved]
            sub_y[moved] = rcy[moved]

        with prof.phase("recheck-detect"):
            trig_x, trig_y = fleet.cells(recheck_m)
            bucket = ttl_bucket(t_us, router.ttl_us)
            need = (
                (trig_x != fleet.last_tx)
                | (trig_y != fleet.last_ty)
                | (fleet.last_bucket != bucket)
                | pushed
            )
        # Admission is order-sensitive, so re-checkers query one at a
        # time in client order — the exact request sequence (and
        # FrontendStats accounting) of the scalar loop.
        x, y = fleet.x, fleet.y
        with prof.phase("batch-lookup"):
            for i in np.flatnonzero(need).tolist():
                since = pending_since[i]
                response = frontend.query(
                    float(x[i]),
                    float(y[i]),
                    t_us,
                    enqueue_t_us=t_us if since is None else since,
                    span_ref=("recheck", i) if sp_on else None,
                )
                if recording:
                    qcell, admitted = frontend.last_plan[0]
                    recorder.emit(
                        "recheck",
                        t_us,
                        subject=i,
                        cell=qcell,
                        channels=response,
                        x=float(x[i]),
                        y=float(y[i]),
                        aux=int(admitted),
                    )
                if response is None:
                    # Shed without a stale fallback: keep the old
                    # response and retry next tick.
                    deferred_requeries += 1
                    if since is None:
                        pending_since[i] = t_us
                else:
                    pending_since[i] = None
                    fleet.resp_id[i] = fleet.intern(response)
                    fleet.last_tx[i] = trig_x[i]
                    fleet.last_ty[i] = trig_y[i]
                    fleet.last_bucket[i] = bucket
                    fleet.requeries[i] += 1
                    if pushed[i]:
                        push_refreshes += 1
                        pushed[i] = False

        tick = fleet.associate_and_score(router.metro, t_us, profiler=prof)
        if recording:
            _record_association_tick(
                recorder, fleet, tick, trig_x, trig_y, t_us, viol_open
            )
        if tel_on:
            agg = router.aggregate_stats()
            tel.sample_tick(
                t_us,
                queries=agg.queries,
                cache_hits=agg.cache_hits,
                requests=frontend.stats.requests,
                shed=frontend.stats.shed,
                pushes=(
                    registry.stats.notifications
                    if registry is not None
                    else 0
                ),
                handoffs=int(fleet.handoffs.sum()),
                violating=int(tick[4].sum()),
            )

    if recording:
        _record_end_closes(
            recorder, fleet, viol_open, ticks * tick_us, recheck_m
        )

    while next_event < len(events):
        register_event(events[next_event], next_event)
        next_event += 1

    tallies = _fleet_report(fleet, ticks, recheck_m)
    connected_ticks = tallies["connected_ticks"]
    violation_ticks = tallies["violation_ticks"]
    client_ticks = tallies["client_ticks"]
    if tel_on:
        frontend.publish_metrics(tel)
        tel.counter("storm_queries").inc(storm_queries)
        tel.counter("requeries").inc(tallies["requeries"])
        tel.counter("deferred_requeries").inc(deferred_requeries)
        tel.counter("push_refreshes").inc(push_refreshes)
        tel.counter("handoffs").inc(tallies["handoffs"])
        tel.counter("vacations").inc(tallies["vacations"])
        tel.counter("violation_ticks").inc(violation_ticks)
        tel.counter("connected_ticks").inc(connected_ticks)
        tel.counter("disconnected_ticks").inc(tallies["disconnected_ticks"])
    report = {
        "num_aps": num_aps,
        "num_clients": num_clients,
        "num_shards": router.num_shards,
        "shard_grid": router.grid,
        "duration_us": duration_us,
        "tick_us": tick_us,
        "speed_mps": speed_mps,
        "recheck_m": recheck_m,
        "extent_m": extent_m,
        "offered_qps": offered_qps,
        "push": push,
        "rate_limit_qps": rate_limit_qps,
        "shed_policy": policy,
        "storm_queries": storm_queries,
        "assigned_aps": sum(1 for ap in aps if ap.channel is not None),
        "requeries": tallies["requeries"],
        "deferred_requeries": deferred_requeries,
        "push_refreshes": push_refreshes,
        "handoffs": tallies["handoffs"],
        "vacations": tallies["vacations"],
        "connected_ticks": connected_ticks,
        "disconnected_ticks": tallies["disconnected_ticks"],
        "connected_fraction": (
            connected_ticks / client_ticks if client_ticks else 0.0
        ),
        "violation_ticks": violation_ticks,
        "violation_us": violation_ticks * tick_us,
        "violation_free_fraction": (
            1.0 - violation_ticks / connected_ticks if connected_ticks else 1.0
        ),
        "mic_events": len(events),
        "displaced_aps": displaced,
        "backup_recoveries": backup_recoveries,
        "full_reassignments": full_reassignments,
        "outages": outages,
        "per_client": tallies["per_client"],
        "final_cells": tallies["final_cells"],
        "frontend": frontend.stats.as_dict(),
        "push_stats": (
            registry.stats.as_dict() if registry is not None else None
        ),
        "db": router.stats_dict(),
        "per_shard": router.per_shard_stats(),
    }
    if tel_on:
        report["telemetry"] = tel.snapshot()
    if sp_on:
        report["spans"] = sp.snapshot()
    return report
