"""Tests for statistics helpers and Hamming analysis."""

import pytest

from repro.analysis.hamming import pairwise_hamming_matrix, upper_triangle
from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    median,
    summarize,
)
from repro.errors import ReproError
from repro.spectrum.spectrum_map import SpectrumMap


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ReproError):
            mean([])

    def test_median(self):
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_confidence_interval_contains_mean(self):
        lo, hi = confidence_interval_95([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_ci_single_value_raises(self):
        with pytest.raises(ReproError):
            confidence_interval_95([1.0])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 9.0])
        assert s.mean == 4.0
        assert s.median == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 9.0
        assert s.count == 3
        assert "mean=4.000" in str(s)

    def test_summarize_empty_raises(self):
        with pytest.raises(ReproError):
            summarize([])


class TestHammingMatrix:
    def test_matrix_symmetric_zero_diagonal(self):
        maps = [
            SpectrumMap([0, 0, 1]),
            SpectrumMap([0, 1, 1]),
            SpectrumMap([1, 1, 1]),
        ]
        matrix = pairwise_hamming_matrix(maps)
        for i in range(3):
            assert matrix[i][i] == 0
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]
        assert matrix[0][1] == 1
        assert matrix[0][2] == 2

    def test_upper_triangle(self):
        maps = [SpectrumMap([0]), SpectrumMap([1]), SpectrumMap([0])]
        matrix = pairwise_hamming_matrix(maps)
        assert sorted(upper_triangle(matrix)) == [0, 1, 1]

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            pairwise_hamming_matrix([])
