"""Tests for the FM wireless-microphone link."""

import numpy as np
import pytest

from repro.audio.interference import PacketBurstSchedule
from repro.audio.mic import FmMicrophoneLink
from repro.audio.speech import synthesize_speech
from repro.errors import SignalError


class TestFmLink:
    def test_clean_link_reconstructs_audio(self):
        audio = synthesize_speech(1.0, seed=1)
        link = FmMicrophoneLink(carrier_snr_db=50.0, seed=2)
        recovered = link.transmit(audio)
        assert len(recovered) == len(audio)
        # High correlation with the source.
        corr = np.corrcoef(audio, recovered)[0, 1]
        assert corr > 0.95

    def test_rate_mismatch_raises(self):
        with pytest.raises(SignalError):
            FmMicrophoneLink(audio_fs=8000, rf_fs=20_000)

    def test_lower_snr_more_distortion(self):
        audio = synthesize_speech(1.0, seed=1)
        clean = FmMicrophoneLink(carrier_snr_db=45.0, seed=2).transmit(audio)
        noisy = FmMicrophoneLink(carrier_snr_db=8.0, seed=2).transmit(audio)
        err_clean = np.mean((clean - audio) ** 2)
        err_noisy = np.mean((noisy - audio) ** 2)
        assert err_noisy > 2 * err_clean

    def test_interference_length_mismatch_raises(self):
        audio = synthesize_speech(0.5, seed=1)
        link = FmMicrophoneLink(seed=2)
        rf = link.modulate(audio)
        with pytest.raises(SignalError):
            link.channel(rf, interference=np.zeros(10, dtype=complex))

    def test_packet_bursts_cause_clicks(self):
        audio = synthesize_speech(2.0, seed=1)
        link = FmMicrophoneLink(seed=2)
        rf_len = len(audio) * link.oversample
        schedule = PacketBurstSchedule(power_db=0.0, seed=3)
        interference = schedule.render(rf_len, link.rf_fs)
        clean = link.transmit(audio)
        degraded = link.transmit(audio, interference)
        # Interference produces localized large-amplitude errors (clicks).
        err = np.abs(degraded - clean)
        assert err.max() > 10 * np.median(err + 1e-9)


class TestPacketBurstSchedule:
    def test_burst_count(self):
        schedule = PacketBurstSchedule(period_ms=100.0, seed=0)
        assert schedule.bursts_in(2.0) == 20

    def test_burst_duration_matches_packet(self):
        # A 70-byte frame at 5 MHz lasts ~a few hundred microseconds.
        schedule = PacketBurstSchedule(seed=0)
        assert 100e-6 < schedule.burst_duration_s < 1e-3

    def test_render_power(self):
        schedule = PacketBurstSchedule(period_ms=10.0, power_db=0.0, seed=1)
        samples = schedule.render(480_000, 48_000)
        busy = np.abs(samples) > 0
        assert busy.any()
        power = np.mean(np.abs(samples[busy]) ** 2)
        assert power == pytest.approx(1.0, rel=0.2)

    def test_invalid_period_raises(self):
        with pytest.raises(SignalError):
            PacketBurstSchedule(period_ms=0.0)
