"""Tests for the PESQ-lite MOS estimator and the Section 2.3 experiment."""

import numpy as np
import pytest

from repro.audio.interference import PacketBurstSchedule
from repro.audio.mic import FmMicrophoneLink
from repro.audio.pesq import MOS_MAX, MOS_MIN, disturbance, mos_delta, mos_score
from repro.audio.speech import synthesize_speech
from repro.errors import SignalError


class TestMosScore:
    def test_identical_signals_score_maximum(self):
        audio = synthesize_speech(1.0, seed=1)
        assert mos_score(audio, audio, 8000) == MOS_MAX

    def test_score_bounded(self):
        audio = synthesize_speech(1.0, seed=1)
        noise = np.random.default_rng(0).standard_normal(len(audio))
        score = mos_score(audio, noise, 8000)
        assert MOS_MIN <= score <= MOS_MAX

    def test_length_mismatch_raises(self):
        audio = synthesize_speech(1.0, seed=1)
        with pytest.raises(SignalError):
            mos_score(audio, audio[:-10], 8000)

    def test_empty_raises(self):
        with pytest.raises(SignalError):
            mos_score(np.array([]), np.array([]), 8000)

    def test_monotone_in_noise_level(self):
        audio = synthesize_speech(1.0, seed=1)
        rng = np.random.default_rng(2)
        noise = rng.standard_normal(len(audio))
        scores = [
            mos_score(audio, audio + level * noise, 8000)
            for level in (0.01, 0.05, 0.2, 0.5)
        ]
        assert all(b <= a for a, b in zip(scores, scores[1:]))

    def test_level_alignment_invariance(self):
        audio = synthesize_speech(1.0, seed=1)
        assert mos_score(audio, 0.5 * audio, 8000) == pytest.approx(
            MOS_MAX, abs=0.05
        )


class TestSection23Experiment:
    """The anechoic-chamber microphone interference measurement."""

    @pytest.fixture(scope="class")
    def experiment(self):
        audio = synthesize_speech(4.0, seed=1)
        link = FmMicrophoneLink(seed=2)
        clean = link.transmit(audio)
        rf_len = len(audio) * link.oversample
        schedule = PacketBurstSchedule(seed=3)  # 70 B every 100 ms
        interfered = link.transmit(audio, schedule.render(rf_len, link.rf_fs))
        return audio, clean, interfered

    def test_clean_link_is_toll_quality(self, experiment):
        audio, clean, _ = experiment
        score = mos_score(audio, clean, 8000)
        assert 3.5 <= score <= 4.4

    def test_mos_drop_near_paper_value(self, experiment):
        # "The Mean Opinion Score of the received audio ... decreased by
        # 0.9 during the UHF packet transmissions."
        audio, clean, interfered = experiment
        delta = mos_delta(audio, clean, interfered, 8000)
        assert 0.6 <= delta <= 1.3

    def test_drop_is_audible(self, experiment):
        # "a MOS reduction of only 0.1 is noticeable by the human ear" —
        # packet interference is far beyond audible.
        audio, clean, interfered = experiment
        assert mos_delta(audio, clean, interfered, 8000) > 0.1

    def test_sparser_packets_hurt_less(self):
        audio = synthesize_speech(4.0, seed=1)
        link = FmMicrophoneLink(seed=2)
        clean = link.transmit(audio)
        rf_len = len(audio) * link.oversample
        deltas = {}
        for period in (50.0, 400.0):
            schedule = PacketBurstSchedule(period_ms=period, seed=3)
            interfered = link.transmit(
                audio, schedule.render(rf_len, link.rf_fs)
            )
            deltas[period] = mos_delta(audio, clean, interfered, 8000)
        assert deltas[50.0] > deltas[400.0]


class TestDisturbance:
    def test_zero_for_identical(self):
        audio = synthesize_speech(0.5, seed=1)
        assert disturbance(audio, audio, 8000) == pytest.approx(0.0, abs=1e-9)

    def test_click_in_speech_detected(self):
        audio = synthesize_speech(2.0, seed=1)
        rng = np.random.default_rng(4)
        clicky = audio.copy()
        clicky[8000:8200] += 0.5 * rng.standard_normal(200)
        assert disturbance(audio, clicky, 8000) > 0.05

    def test_click_grows_disturbance_monotonically(self):
        audio = synthesize_speech(2.0, seed=1)
        rng = np.random.default_rng(4)
        click = rng.standard_normal(200)
        values = []
        for level in (0.05, 0.2, 0.8):
            clicky = audio.copy()
            clicky[8000:8200] += level * click
            values.append(disturbance(audio, clicky, 8000))
        assert values[0] < values[1] < values[2]

    def test_click_during_pause_is_masked(self):
        # Voice-activity masking: corruption confined to a silent frame
        # does not count (PESQ ignores silence).
        audio = synthesize_speech(4.0, seed=1)
        from repro.audio.speech import active_speech_mask

        mask = active_speech_mask(audio, 8000)
        frame = 256  # 32 ms at 8 kHz
        pause_frames = np.flatnonzero(~mask)
        assert len(pause_frames) > 0
        idx = int(pause_frames[len(pause_frames) // 2]) * frame
        clicky = audio.copy()
        rng = np.random.default_rng(4)
        clicky[idx : idx + 50] += 0.3 * rng.standard_normal(50)
        assert disturbance(audio, clicky, 8000) == pytest.approx(0.0, abs=0.02)
