"""Tests for the synthetic speech generator."""

import numpy as np
import pytest

from repro.audio.speech import active_speech_mask, synthesize_speech
from repro.errors import SignalError


class TestSynthesis:
    def test_length_and_range(self):
        audio = synthesize_speech(2.0, fs=8000)
        assert len(audio) == 16000
        assert np.abs(audio).max() <= 1.0

    def test_deterministic_per_seed(self):
        a = synthesize_speech(1.0, seed=5)
        b = synthesize_speech(1.0, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthesize_speech(1.0, seed=5)
        b = synthesize_speech(1.0, seed=6)
        assert not np.array_equal(a, b)

    def test_invalid_duration_raises(self):
        with pytest.raises(SignalError):
            synthesize_speech(0.0)

    def test_has_pauses_and_speech(self):
        audio = synthesize_speech(4.0, seed=1)
        mask = active_speech_mask(audio)
        assert mask.any()
        assert not mask.all()

    def test_spectral_energy_near_pitch(self):
        audio = synthesize_speech(2.0, seed=1, pitch_hz=120.0)
        spectrum = np.abs(np.fft.rfft(audio))
        freqs = np.fft.rfftfreq(len(audio), 1 / 8000)
        band = (freqs > 80) & (freqs < 800)
        out_band = freqs > 2000
        assert spectrum[band].sum() > 5 * spectrum[out_band].sum()


class TestActivityMask:
    def test_silence_is_inactive(self):
        audio = synthesize_speech(2.0, seed=1)
        silent = np.zeros_like(audio)
        combined = np.concatenate([audio, silent])
        mask = active_speech_mask(combined)
        half = len(mask) // 2
        assert mask[half + 2 :].sum() == 0

    def test_short_signal_empty_mask(self):
        assert len(active_speech_mask(np.zeros(10))) == 0
