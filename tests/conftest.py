"""Shared fixtures for the WhiteFi reproduction test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.spectrum.spectrum_map import SpectrumMap


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def py_rng() -> random.Random:
    """A deterministic stdlib random source."""
    return random.Random(12345)


@pytest.fixture
def all_free_map() -> SpectrumMap:
    """A 30-channel map with every UHF channel free."""
    return SpectrumMap.all_free()


@pytest.fixture
def paper_building5_map() -> SpectrumMap:
    """The prototype testbed map of Section 5.4.2.

    "The spectrum map of our building has the following free UHF
    channels: 26 to 30, 33 to 35, 39 and 48" — TV channel numbers, i.e.
    indices 5-9, 12-14, 18 and 27 in the usable-channel index space.
    """
    return SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)


@pytest.fixture
def seventeen_free_map() -> SpectrumMap:
    """The large-scale simulation map of Section 5.4.1.

    "There are 17 free UHF channels, and the widest contiguous white
    space is 36 MHz" (six UHF channels).
    """
    free = list(range(2, 8)) + list(range(10, 13)) + list(range(15, 19)) + [21, 22, 25, 28]
    spectrum_map = SpectrumMap.from_free(free, 30)
    assert spectrum_map.num_free() == 17
    return spectrum_map
