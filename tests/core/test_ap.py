"""Tests for the AP control plane."""

import pytest

from repro.core.ap import ApController
from repro.core.assignment import SwitchReason
from repro.errors import ProtocolError
from repro.spectrum.airtime import AirtimeObservation, NodeReport
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

MAP = SpectrumMap.from_free(list(range(5, 10)) + [14, 20, 25], 30)


def obs(busy=None, aps=None):
    return AirtimeObservation.from_mappings(busy or {}, aps or {}, 30)


def make_ap():
    return ApController(ssid_code=3, ap_map=MAP)


class TestEvaluation:
    def test_boot_selects_channel_and_backup(self):
        ap = make_ap()
        decision = ap.evaluate(obs(), SwitchReason.BOOT)
        assert decision.channel == WhiteFiChannel(7, 20.0)
        backup = ap.state.backup_channel
        assert backup is not None
        assert not backup.overlaps(decision.channel)

    def test_reports_constrain_candidates(self):
        ap = make_ap()
        client_map = MAP.with_occupied(9)
        ap.accept_report(NodeReport("c0", client_map, obs()))
        decision = ap.evaluate(obs(), SwitchReason.BOOT)
        assert 9 not in decision.channel.spanned_indices

    def test_forget_client_restores_candidates(self):
        ap = make_ap()
        ap.accept_report(NodeReport("c0", MAP.with_occupied(9), obs()))
        ap.forget_client("c0")
        decision = ap.evaluate(obs(), SwitchReason.BOOT)
        assert decision.channel == WhiteFiChannel(7, 20.0)

    def test_union_map(self):
        ap = make_ap()
        ap.accept_report(NodeReport("c0", MAP.with_occupied(14), obs()))
        assert ap.union_map().is_occupied(14)


class TestIncumbentHandling:
    def test_vacate_target_is_backup(self):
        ap = make_ap()
        ap.evaluate(obs(), SwitchReason.BOOT)
        backup = ap.state.backup_channel
        ap.incumbent_on_main(7)
        assert ap.state.main_channel is None
        assert ap.vacate_target() == backup
        assert ap.ap_map.is_occupied(7)

    def test_vacate_without_backup_raises(self):
        ap = make_ap()
        with pytest.raises(ProtocolError):
            ap.vacate_target()

    def test_backup_invalidated_selects_secondary(self):
        ap = make_ap()
        ap.evaluate(obs(), SwitchReason.BOOT)
        first_backup = ap.state.backup_channel
        replacement = ap.backup_invalidated(first_backup.center_index)
        assert replacement is not None
        assert replacement != first_backup
        assert ap.ap_map.is_occupied(first_backup.center_index)


class TestChirpHandling:
    def test_chirp_ssid_filtering(self):
        ap = make_ap()
        own_duration = ap.codec.duration_us(3)
        other_duration = ap.codec.duration_us(7)
        from repro.sift.detector import edge_bias_us

        assert ap.chirp_is_ours(own_duration + edge_bias_us())
        assert not ap.chirp_is_ours(other_duration + edge_bias_us())

    def test_reassign_after_chirp_respects_chirped_map(self):
        ap = make_ap()
        ap.evaluate(obs(), SwitchReason.BOOT)
        # The disconnected client reports the 20 MHz fragment as mic'd.
        chirped = MAP.with_occupied(7)
        decision = ap.reassign_after_chirp([chirped], obs())
        assert 7 not in decision.channel.spanned_indices
        assert ap.state.main_channel == decision.channel

    def test_reassign_does_not_poison_ap_map(self):
        # The chirped constraints apply to the decision, but the AP's own
        # long-term map must not permanently inherit them.
        ap = make_ap()
        ap.evaluate(obs(), SwitchReason.BOOT)
        chirped = MAP.with_occupied(7)
        ap.reassign_after_chirp([chirped], obs())
        assert ap.ap_map.is_free(7)
