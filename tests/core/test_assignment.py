"""Tests for spectrum assignment with hysteresis."""

import pytest

from repro.core.assignment import ChannelAssigner, SwitchReason
from repro.errors import NoChannelAvailableError, SpectrumMapError
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap


def obs(busy=None, aps=None):
    return AirtimeObservation.from_mappings(busy or {}, aps or {}, 30)


FIVE_FREE = SpectrumMap.from_free(range(5, 10), 30)


class TestEvaluate:
    def test_boot_picks_widest_clean_channel(self):
        assigner = ChannelAssigner()
        decision = assigner.evaluate(
            FIVE_FREE, obs(), reason=SwitchReason.BOOT
        )
        assert decision.channel == WhiteFiChannel(7, 20.0)
        assert decision.switched
        assert decision.previous is None

    def test_client_maps_constrain_choice(self):
        assigner = ChannelAssigner()
        client_map = FIVE_FREE.with_occupied(9)
        decision = assigner.evaluate(
            FIVE_FREE,
            obs(),
            [client_map],
            [obs()],
            reason=SwitchReason.BOOT,
        )
        assert 9 not in decision.channel.spanned_indices

    def test_no_candidate_raises(self):
        assigner = ChannelAssigner()
        with pytest.raises(NoChannelAvailableError):
            assigner.evaluate(
                SpectrumMap.all_occupied(30), obs(), reason=SwitchReason.BOOT
            )

    def test_mismatched_reports_raise(self):
        assigner = ChannelAssigner()
        with pytest.raises(SpectrumMapError):
            assigner.evaluate(FIVE_FREE, obs(), [FIVE_FREE], [])

    def test_background_shifts_choice(self):
        assigner = ChannelAssigner()
        # Saturated channels 5-7 make the 20 MHz span unattractive.
        loaded = obs(
            busy={5: 0.95, 6: 0.95, 7: 0.95}, aps={5: 1, 6: 1, 7: 1}
        )
        decision = assigner.evaluate(
            FIVE_FREE, loaded, reason=SwitchReason.BOOT
        )
        assert decision.channel.width_mhz < 20.0


class TestHysteresis:
    def test_marginal_gain_does_not_switch(self):
        assigner = ChannelAssigner(hysteresis_margin=0.10)
        assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        # Introduce a barely-better alternative: 5% load on one spanned
        # channel of the current choice.
        slightly_loaded = obs(busy={5: 0.05})
        decision = assigner.evaluate(
            FIVE_FREE, slightly_loaded, reason=SwitchReason.PERIODIC
        )
        assert not decision.switched
        assert decision.channel == WhiteFiChannel(7, 20.0)

    def test_large_gain_switches(self):
        assigner = ChannelAssigner(hysteresis_margin=0.10)
        assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        heavy = obs(busy={5: 0.9, 6: 0.9, 7: 0.9}, aps={5: 1, 6: 1, 7: 1})
        decision = assigner.evaluate(
            FIVE_FREE, heavy, reason=SwitchReason.PERIODIC
        )
        assert decision.switched
        assert decision.channel.width_mhz < 20.0

    def test_zero_margin_ablation_switches_eagerly(self):
        eager = ChannelAssigner(hysteresis_margin=0.0)
        sticky = ChannelAssigner(hysteresis_margin=0.5)
        for assigner in (eager, sticky):
            assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        moderate = obs(busy={5: 0.4, 6: 0.4}, aps={5: 1, 6: 1})
        eager_decision = eager.evaluate(
            FIVE_FREE, moderate, reason=SwitchReason.PERIODIC
        )
        sticky_decision = sticky.evaluate(
            FIVE_FREE, moderate, reason=SwitchReason.PERIODIC
        )
        assert eager_decision.switched
        assert not sticky_decision.switched

    def test_negative_margin_rejected(self):
        with pytest.raises(SpectrumMapError):
            ChannelAssigner(hysteresis_margin=-0.1)


class TestIncumbentSwitch:
    def test_incumbent_forces_move_even_without_gain(self):
        assigner = ChannelAssigner(hysteresis_margin=10.0)  # extreme stickiness
        assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        current = assigner.current
        # A mic appeared on the current span: map loses channel 7.
        new_map = FIVE_FREE.with_occupied(7)
        decision = assigner.evaluate(
            new_map, obs(), reason=SwitchReason.INCUMBENT
        )
        assert decision.channel != current
        assert 7 not in decision.channel.spanned_indices

    def test_incumbent_never_reselects_current(self):
        assigner = ChannelAssigner()
        assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        current = assigner.current
        # Even if the map still allows it, INCUMBENT excludes the current
        # channel from candidates.
        decision = assigner.evaluate(
            FIVE_FREE, obs(), reason=SwitchReason.INCUMBENT
        )
        assert decision.channel != current


class TestRevert:
    def test_revert_to_restores_channel(self):
        assigner = ChannelAssigner()
        assigner.evaluate(FIVE_FREE, obs(), reason=SwitchReason.BOOT)
        old = assigner.current
        assigner.evaluate(
            FIVE_FREE,
            obs(busy={5: 0.9, 6: 0.9, 7: 0.9}, aps={5: 1, 6: 1, 7: 1}),
            reason=SwitchReason.PERIODIC,
        )
        assigner.revert_to(old)
        assert assigner.current == old


class TestSwitchReason:
    def test_voluntary_classification(self):
        assert SwitchReason.PERIODIC.voluntary
        assert SwitchReason.PERFORMANCE_DROP.voluntary
        assert not SwitchReason.BOOT.voluntary
        assert not SwitchReason.INCUMBENT.voluntary
        assert not SwitchReason.DISCONNECTION.voluntary
