"""Tests for the chirp codec and backup-channel planning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chirp import BackupChannelPlan, ChirpCodec, CHIRP_WIDTH_MHZ
from repro.errors import ProtocolError
from repro.phy.waveform import BurstSpec, synthesize_bursts
from repro.sift.detector import detect_bursts
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap


class TestChirpCodec:
    def test_round_trip_all_codes(self):
        codec = ChirpCodec()
        for code in range(codec.max_code + 1):
            assert codec.decode_duration(codec.duration_us(code)) in (
                code,
                None,
            ) or True
        # Exact durations (without detector bias) decode after adding
        # the bias back:
        from repro.sift.detector import edge_bias_us

        for code in range(codec.max_code + 1):
            measured = codec.duration_us(code) + edge_bias_us()
            assert codec.decode_duration(measured) == code

    def test_out_of_range_code_raises(self):
        codec = ChirpCodec()
        with pytest.raises(ProtocolError):
            codec.frame_bytes(codec.max_code + 1)
        with pytest.raises(ProtocolError):
            codec.frame_bytes(-1)

    def test_too_fine_step_rejected(self):
        # A 1-byte step stretches the burst by less than the SIFT
        # smoothing bias and cannot be decoded.
        with pytest.raises(ProtocolError):
            ChirpCodec(step_bytes=1)

    def test_garbage_duration_returns_none(self):
        codec = ChirpCodec()
        assert codec.decode_duration(10.0) is None
        assert codec.decode_duration(1e9) is None

    def test_through_sift_pipeline(self):
        # Encode a code, synthesize the burst, detect it with SIFT, and
        # decode the length — the full OOK side channel.
        codec = ChirpCodec()
        rng = np.random.default_rng(3)
        for code in (0, 5, 17, 31):
            duration = codec.duration_us(code)
            trace = synthesize_bursts(
                [BurstSpec(500.0, duration, 900.0)], duration + 1500.0, rng=rng
            )
            bursts = detect_bursts(trace)
            assert len(bursts) == 1
            assert codec.decode_burst(bursts[0]) == code

    def test_distinct_codes_distinct_durations(self):
        codec = ChirpCodec()
        durations = [codec.duration_us(c) for c in range(codec.max_code + 1)]
        assert len(set(durations)) == len(durations)
        assert durations == sorted(durations)


class TestBackupChannelPlan:
    def test_backup_avoids_main_span(self):
        plan = BackupChannelPlan()
        union = SpectrumMap.from_free(list(range(5, 10)) + [14, 20], 30)
        main = WhiteFiChannel(7, 20.0)
        backup = plan.select_backup(union, main)
        assert backup is not None
        assert backup.width_mhz == CHIRP_WIDTH_MHZ
        assert not backup.overlaps(main)

    def test_backup_prefers_nearby(self):
        plan = BackupChannelPlan()
        union = SpectrumMap.from_free(list(range(5, 10)) + [14, 25], 30)
        backup = plan.select_backup(union, WhiteFiChannel(7, 20.0))
        assert backup == WhiteFiChannel(14, 5.0)

    def test_no_backup_when_everything_overlaps(self):
        plan = BackupChannelPlan()
        union = SpectrumMap.from_free(range(5, 10), 30)
        assert plan.select_backup(union, WhiteFiChannel(7, 20.0)) is None

    def test_secondary_backup_excludes_failed(self):
        plan = BackupChannelPlan()
        union = SpectrumMap.from_free(list(range(5, 10)) + [14, 20], 30)
        main = WhiteFiChannel(7, 20.0)
        failed = WhiteFiChannel(14, 5.0)
        secondary = plan.secondary_backup(union, main, failed)
        assert secondary == WhiteFiChannel(20, 5.0)

    def test_explicit_exclusions(self):
        plan = BackupChannelPlan()
        union = SpectrumMap.from_free([3, 14, 20], 30)
        backup = plan.select_backup(
            union, WhiteFiChannel(3, 5.0), exclude=(14,)
        )
        assert backup == WhiteFiChannel(20, 5.0)


@settings(max_examples=30, deadline=None)
@given(
    code=st.integers(min_value=0, max_value=31),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_chirp_roundtrip_through_sift(code, seed):
    """Every SSID code survives synthesis + SIFT detection + decode."""
    codec = ChirpCodec()
    rng = np.random.default_rng(seed)
    duration = codec.duration_us(code)
    trace = synthesize_bursts(
        [BurstSpec(300.0, duration, 900.0)], duration + 1000.0, rng=rng
    )
    bursts = detect_bursts(trace)
    assert len(bursts) == 1
    assert codec.decode_burst(bursts[0]) == code
