"""Tests for the client control plane."""

import pytest

from repro.core.client import ClientController, ClientPhase
from repro.errors import ProtocolError
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap

MAP = SpectrumMap.from_free(list(range(5, 10)) + [14, 20], 30)


def make_client():
    client = ClientController("c0", ssid_code=3, spectrum_map=MAP)
    client.main_channel = WhiteFiChannel(7, 20.0)
    client.backup_channel = WhiteFiChannel(14, 5.0)
    return client


class TestSteadyState:
    def test_report_carries_map_and_airtime(self):
        client = make_client()
        report = client.build_report(AirtimeObservation.idle(30), 123.0)
        assert report.node_id == "c0"
        assert report.spectrum_map == MAP
        assert report.timestamp_us == 123.0

    def test_beacon_updates_backup(self):
        client = make_client()
        client.on_beacon(WhiteFiChannel(20, 5.0), 10.0)
        assert client.backup_channel == WhiteFiChannel(20, 5.0)
        assert client.last_heard_ap_us == 10.0

    def test_channel_switch_follows(self):
        client = make_client()
        client.on_channel_switch(WhiteFiChannel(13, 10.0), 10.0)
        assert client.main_channel == WhiteFiChannel(13, 10.0)
        assert client.phase is ClientPhase.CONNECTED

    def test_silence_detection(self):
        client = make_client()
        client.heard_from_ap(0.0)
        assert not client.is_disconnected(100_000.0)
        assert client.is_disconnected(500_000.0)


class TestIncumbentHandling:
    def test_must_vacate_when_mic_under_main(self):
        client = make_client()
        assert not client.must_vacate()
        client.incumbent_detected(8)
        assert client.must_vacate()

    def test_mic_elsewhere_no_vacate(self):
        client = make_client()
        client.incumbent_detected(20)
        assert not client.must_vacate()

    def test_start_chirping_uses_backup(self):
        client = make_client()
        client.incumbent_detected(8)
        plan = client.start_chirping()
        assert plan.channel == WhiteFiChannel(14, 5.0)
        assert plan.frame_bytes == client.codec.frame_bytes(3)
        assert plan.spectrum_map.is_occupied(8)
        assert client.phase is ClientPhase.CHIRPING
        assert client.main_channel is None

    def test_chirping_without_backup_raises(self):
        client = ClientController("c0", 3, MAP)
        with pytest.raises(ProtocolError):
            client.start_chirping()

    def test_occupied_backup_falls_back_to_arbitrary_free(self):
        # Section 4.3: "when a node determines that the previously-
        # selected backup channel is occupied ... an arbitrary available
        # channel is selected as a secondary backup".
        client = make_client()
        client.incumbent_detected(14)  # mic on the backup itself
        client.incumbent_detected(8)  # and on the main channel
        plan = client.start_chirping()
        assert plan.channel.width_mhz == 5.0
        assert plan.channel.center_index != 14
        assert client.spectrum_map.is_free(plan.channel.center_index)

    def test_no_free_channel_at_all_raises(self):
        client = ClientController(
            "c0", 3, SpectrumMap.from_free([7], 30)
        )
        client.main_channel = WhiteFiChannel(7, 5.0)
        client.backup_channel = WhiteFiChannel(7, 5.0)
        client.incumbent_detected(7)
        with pytest.raises(ProtocolError):
            client.start_chirping()


class TestReconnect:
    def test_reconnect_restores_connected_phase(self):
        client = make_client()
        client.incumbent_detected(8)
        client.start_chirping()
        client.reconnect(WhiteFiChannel(20, 5.0), 999.0)
        assert client.phase is ClientPhase.CONNECTED
        assert client.main_channel == WhiteFiChannel(20, 5.0)
        assert client.last_heard_ap_us == 999.0
