"""Tests for AP discovery (baseline, L-SIFT, J-SIFT)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.core.discovery import (
    BaselineDiscovery,
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
    crossover_channels,
    expected_scans_baseline,
    expected_scans_jsift,
    expected_scans_lsift,
)
from repro.errors import DiscoveryError
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio import Scanner, Transceiver
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.fragmentation import single_fragment_map
from repro.spectrum.spectrum_map import SpectrumMap

ALGORITHMS = [BaselineDiscovery, LSiftDiscovery, JSiftDiscovery]


def run_discovery(algorithm_cls, ap_channel, client_map, seed=0, phase_us=12_345.0):
    env = RfEnvironment(seed=seed)
    env.add_transmitter(BeaconingAp(ap_channel, phase_us=phase_us))
    session = DiscoverySession(
        Scanner(env),
        Transceiver(env, rng=np.random.default_rng(seed)),
        client_map,
    )
    return algorithm_cls().discover(session)


class TestCorrectness:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize(
        "ap_channel",
        [
            WhiteFiChannel(0, 5.0),
            WhiteFiChannel(12, 10.0),
            WhiteFiChannel(27, 20.0),
        ],
    )
    def test_finds_ap_anywhere(self, algorithm_cls, ap_channel):
        outcome = run_discovery(algorithm_cls, ap_channel, SpectrumMap.all_free())
        assert outcome.succeeded
        assert outcome.channel == ap_channel

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_single_channel_fragment(self, algorithm_cls):
        client_map = single_fragment_map(1, 30, start=14)
        outcome = run_discovery(
            algorithm_cls, WhiteFiChannel(14, 5.0), client_map
        )
        assert outcome.succeeded
        assert outcome.channel == WhiteFiChannel(14, 5.0)

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_fragmented_map(self, algorithm_cls):
        free = list(range(3, 6)) + list(range(20, 25))
        client_map = SpectrumMap.from_free(free, 30)
        ap_channel = WhiteFiChannel(22, 10.0)
        outcome = run_discovery(algorithm_cls, ap_channel, client_map)
        assert outcome.succeeded
        assert outcome.channel == ap_channel

    def test_occupied_channels_never_scanned(self):
        client_map = SpectrumMap.from_free(range(10, 20), 30)
        outcome = run_discovery(
            LSiftDiscovery, WhiteFiChannel(15, 5.0), client_map
        )
        assert all(10 <= i < 20 for i in outcome.scanned_indices)


class TestEfficiency:
    def test_lsift_detects_from_lowest_spanned_channel(self):
        outcome = run_discovery(
            LSiftDiscovery, WhiteFiChannel(12, 20.0), SpectrumMap.all_free()
        )
        # The AP spans 10-14; scanning 0..10 means 11 scans then a single
        # verification dwell (the center is known exactly: Fc = Fs + E).
        assert outcome.sift_scans == 11
        assert outcome.beacon_dwells == 1

    def test_jsift_uses_fewer_scans_on_wide_spectrum(self):
        l_out = run_discovery(
            LSiftDiscovery, WhiteFiChannel(25, 20.0), SpectrumMap.all_free()
        )
        j_out = run_discovery(
            JSiftDiscovery, WhiteFiChannel(25, 20.0), SpectrumMap.all_free()
        )
        assert j_out.sift_scans < l_out.sift_scans

    def test_jsift_pays_endgame_dwells(self):
        outcome = run_discovery(
            JSiftDiscovery, WhiteFiChannel(12, 20.0), SpectrumMap.all_free()
        )
        assert outcome.beacon_dwells >= 1
        assert outcome.beacon_dwells <= 5  # at most span tries

    def test_baseline_scans_every_combination_worst_case(self):
        # With the AP on the last candidate the baseline sweeps them all.
        env = RfEnvironment(seed=0)
        session = DiscoverySession(
            Scanner(env),
            Transceiver(env, rng=np.random.default_rng(0)),
            single_fragment_map(5, 30, start=0),
        )
        outcome = BaselineDiscovery().discover(session)
        assert not outcome.succeeded
        # 5 fragment channels: 5 + 3 + 1 = 9 candidates tried.
        assert outcome.beacon_dwells == 9

    def test_jsift_faster_than_baseline_by_paper_margin(self):
        # Section 5.2: J-SIFT improves discovery time by more than 75%
        # on wide-open spectrum.
        totals = {}
        for cls in (JSiftDiscovery, BaselineDiscovery):
            times = []
            for seed in range(5):
                rng = np.random.default_rng(seed)
                center = int(rng.integers(2, 28))
                outcome = run_discovery(
                    cls,
                    WhiteFiChannel(center, 20.0),
                    SpectrumMap.all_free(),
                    seed=seed,
                    phase_us=float(rng.uniform(0, 100_000)),
                )
                assert outcome.succeeded
                times.append(outcome.elapsed_us)
            totals[cls.name] = sum(times) / len(times)
        assert totals["j-sift"] < 0.35 * totals["baseline"]


class TestAnalyticalExpectations:
    def test_lsift_formula(self):
        assert expected_scans_lsift(30) == 15.0

    def test_jsift_formula(self):
        # (NC + 2^(NW-1) + (NW-1)/2) / NW with NC=30, NW=3: 35/3.
        assert expected_scans_jsift(30) == pytest.approx(35 / 3)

    def test_baseline_formula(self):
        assert expected_scans_baseline(30) == 45.0

    def test_crossover_at_ten_channels(self):
        # "we expect J-SIFT to outperform L-SIFT when NC is greater than
        # about 10 UHF channels".
        assert crossover_channels(3) == pytest.approx(10.0)
        assert expected_scans_jsift(9) > expected_scans_lsift(9)
        assert expected_scans_jsift(12) < expected_scans_lsift(12)

    def test_invalid_inputs_raise(self):
        with pytest.raises(DiscoveryError):
            expected_scans_lsift(0)
        with pytest.raises(DiscoveryError):
            expected_scans_jsift(10, 0)
        with pytest.raises(DiscoveryError):
            expected_scans_baseline(-1)


@settings(max_examples=10, deadline=None)
@given(
    center=st.integers(min_value=2, max_value=27),
    width=st.sampled_from([5.0, 10.0, 20.0]),
    seed=st.integers(min_value=0, max_value=20),
)
def test_property_jsift_always_finds_ap(center, width, seed):
    """J-SIFT discovers any beaconing AP on an all-free map."""
    half = constants.span_channels(width) // 2
    if center - half < 0 or center + half > 29:
        return
    outcome = run_discovery(
        JSiftDiscovery, WhiteFiChannel(center, width), SpectrumMap.all_free(),
        seed=seed,
    )
    assert outcome.succeeded
    assert outcome.channel == WhiteFiChannel(center, width)
