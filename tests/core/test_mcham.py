"""Tests for the MCham metric (Equations 1 and 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChannelError
from repro.core.mcham import (
    best_channel,
    expected_share,
    mcham,
    mcham_all_nodes,
    network_score,
)
from repro.spectrum.airtime import AirtimeObservation
from repro.spectrum.channels import WhiteFiChannel


def obs(busy=None, aps=None, n=30):
    return AirtimeObservation.from_mappings(busy or {}, aps or {}, n)


class TestExpectedShare:
    def test_free_channel_full_share(self):
        assert expected_share(0.0, 0) == 1.0

    def test_residual_airtime_dominates_when_light(self):
        # rho = max(1 - 0.2, 1/2) = 0.8.
        assert expected_share(0.2, 1) == 0.8

    def test_fair_share_floor_when_saturated(self):
        # Even at A=1, contending with B APs yields 1/(B+1).
        assert expected_share(1.0, 1) == 0.5
        assert expected_share(0.9, 1) == 0.5
        assert expected_share(1.0, 3) == 0.25

    def test_invalid_inputs_raise(self):
        with pytest.raises(ChannelError):
            expected_share(1.5, 0)
        with pytest.raises(ChannelError):
            expected_share(0.5, -1)


class TestMchamExamples:
    def test_paper_example_1_empty_spectrum(self):
        # "If there is no background interference ... MCham simply
        # evaluates to the optimal channel capacity": 1, 2, 4.
        empty = obs()
        assert mcham(WhiteFiChannel(10, 5.0), empty) == 1.0
        assert mcham(WhiteFiChannel(10, 10.0), empty) == 2.0
        assert mcham(WhiteFiChannel(10, 20.0), empty) == 4.0

    def test_paper_example_2(self):
        # 20 MHz channel over 5 UHF channels: three clean, one with an AP
        # at 0.9 airtime, one with an AP at 0.2 airtime:
        # MCham = 4 * 0.5 * 0.8 = 1.6.
        observation = obs(
            busy={8: 0.9, 9: 0.2}, aps={8: 1, 9: 1}
        )
        value = mcham(WhiteFiChannel(10, 20.0), observation)
        assert value == pytest.approx(1.6)

    def test_product_vs_min_max_ablation(self):
        # Section 4.1: "simply taking the minimum or the maximum across
        # all channels, instead of the product, will be an underestimate
        # [overestimate] since traffic on a narrower channel contends
        # with traffic on an overlapping wider channel".
        observation = obs(
            busy={8: 0.5, 9: 0.5, 10: 0.5}, aps={8: 1, 9: 1, 10: 1}
        )
        channel = WhiteFiChannel(9, 10.0)
        product = mcham(channel, observation)
        minimum = mcham(channel, observation, aggregation="min")
        maximum = mcham(channel, observation, aggregation="max")
        assert product < minimum <= maximum

    def test_unknown_aggregation_raises(self):
        with pytest.raises(ChannelError):
            mcham(WhiteFiChannel(9, 5.0), obs(), aggregation="sum")

    def test_mcham_all_nodes_order(self):
        observations = [obs(), obs(busy={10: 1.0}, aps={10: 1})]
        values = mcham_all_nodes(WhiteFiChannel(10, 5.0), observations)
        assert values == [1.0, 0.5]


class TestNetworkScore:
    def test_bootstrap_without_clients(self):
        channel = WhiteFiChannel(10, 20.0)
        assert network_score(channel, obs(), []) == 4.0

    def test_ap_weighted_n_times(self):
        channel = WhiteFiChannel(10, 5.0)
        clients = [obs(), obs(), obs()]
        # N*1 + 3*1 = 6 with everything clean.
        assert network_score(channel, obs(), clients) == 6.0

    def test_ap_weight_override(self):
        channel = WhiteFiChannel(10, 5.0)
        clients = [obs(), obs(), obs()]
        assert network_score(channel, obs(), clients, ap_weight=1.0) == 4.0

    def test_downlink_weighting_tilts_toward_ap_view(self):
        channel = WhiteFiChannel(10, 5.0)
        ap_busy = obs(busy={10: 0.8}, aps={10: 1})
        clients_clean = [obs()] * 4
        weighted = network_score(channel, ap_busy, clients_clean)
        unweighted = network_score(
            channel, ap_busy, clients_clean, ap_weight=1.0
        )
        # The busy AP view drags the weighted score down harder.
        assert weighted / (4 + 4) < unweighted / (1 + 4)


class TestBestChannel:
    def test_argmax(self):
        candidates = [WhiteFiChannel(5, 5.0), WhiteFiChannel(10, 5.0)]
        observation = obs(busy={5: 0.9}, aps={5: 1})
        chosen, score = best_channel(
            candidates, lambda c: mcham(c, observation)
        )
        assert chosen == WhiteFiChannel(10, 5.0)
        assert score == 1.0

    def test_tie_prefers_wider(self):
        candidates = [WhiteFiChannel(5, 5.0), WhiteFiChannel(10, 20.0)]
        chosen, _ = best_channel(candidates, lambda c: 1.0)
        assert chosen.width_mhz == 20.0

    def test_empty_candidates(self):
        chosen, score = best_channel([], lambda c: 1.0)
        assert chosen is None


@given(
    busy=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    aps=st.integers(min_value=0, max_value=10),
)
def test_property_share_bounds(busy, aps):
    """rho is always within (0, 1]."""
    share = expected_share(busy, aps)
    assert 0.0 < share <= 1.0


@given(
    busy_a=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    busy_b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    aps=st.integers(min_value=0, max_value=5),
)
def test_property_share_monotone_in_airtime(busy_a, busy_b, aps):
    """More measured airtime never increases the expected share."""
    lo, hi = sorted((busy_a, busy_b))
    assert expected_share(hi, aps) <= expected_share(lo, aps)


@given(
    center=st.integers(min_value=2, max_value=27),
    width=st.sampled_from([5.0, 10.0, 20.0]),
    busy=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_property_mcham_bounded_by_capacity(center, width, busy):
    """MCham never exceeds the channel's optimal capacity."""
    observation = AirtimeObservation(
        (busy,) * 30, (0,) * 30
    )
    channel = WhiteFiChannel(center, width)
    value = mcham(channel, observation)
    assert 0.0 < value <= channel.capacity_factor()


@given(
    busy=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)
def test_property_uniform_load_ordering_flips_at_root_half(busy):
    """With uniform load, 20 MHz beats 5 MHz iff rho^4 > 1/4.

    This is the analytical crossover underlying Figure 10: all widths
    score equally at rho = 1/sqrt(2).  One contending AP per channel
    keeps the inputs physically consistent (busy airtime implies a
    transmitter) and engages the fair-share floor at heavy load.
    """
    observation = AirtimeObservation((busy,) * 30, (1,) * 30)
    m5 = mcham(WhiteFiChannel(10, 5.0), observation)
    m20 = mcham(WhiteFiChannel(10, 20.0), observation)
    rho = max(1.0 - busy, 0.5)
    if rho > 0.7072:
        assert m20 > m5
    elif rho < 0.7070:
        assert m20 < m5
