"""Integration tests for the full WhiteFi BSS protocol in the simulator."""

import pytest

from repro import constants
from repro.core.network import WhiteFiBss
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.spectrum.incumbents import (
    IncumbentField,
    TvStation,
    WirelessMicrophone,
)
from repro.spectrum.spectrum_map import SpectrumMap

BASE_MAP = SpectrumMap.from_free(list(range(5, 10)) + [12, 13, 14, 18, 27], 30)


def build_bss(mic_channel=None, mic_onset_us=5_000_000.0, seed=3, clients=1):
    engine = Engine()
    medium = Medium(engine, 30)
    incumbents = IncumbentField(
        30, tv_stations=[TvStation(i) for i in BASE_MAP.occupied_indices()]
    )
    if mic_channel is not None:
        mic = WirelessMicrophone(mic_channel)
        mic.add_session(mic_onset_us, 1e12)
        incumbents.add_microphone(mic)
    bss = WhiteFiBss(
        engine, medium, incumbents, BASE_MAP, [BASE_MAP] * clients, seed=seed
    )
    return engine, bss


class TestSteadyState:
    def test_boot_selects_widest_and_flows_data(self):
        engine, bss = build_bss()
        bss.start()
        engine.run_until(3_000_000.0)
        assert bss.ap_ctrl.state.main_channel is not None
        assert bss.ap_ctrl.state.main_channel.width_mhz == 20.0
        client_node = bss.clients[0][1]
        assert client_node.delivered_bytes > 100_000

    def test_beacons_delivered_to_clients(self):
        engine, bss = build_bss()
        bss.start()
        engine.run_until(1_000_000.0)
        ctrl, _ = bss.clients[0]
        assert ctrl.backup_channel is not None
        # ~10 beacons in 1 s: the client heard from the AP recently.
        assert engine.now_us - ctrl.last_heard_ap_us < 300_000.0

    def test_reports_reach_ap(self):
        engine, bss = build_bss()
        bss.start()
        engine.run_until(2_500_000.0)
        assert "client0" in bss.ap_ctrl.state.reports


class TestDisconnectionRecovery:
    def test_mic_on_main_channel_triggers_recovery(self):
        engine, bss = build_bss(mic_channel=7)
        bss.start()
        engine.run_until(15_000_000.0)
        assert len(bss.disconnections) == 1
        episode = bss.disconnections[0]
        assert episode.vacated_us is not None
        assert episode.reconnected_us is not None
        assert episode.new_channel is not None
        assert 7 not in episode.new_channel.spanned_indices

    def test_recovery_within_paper_budget(self):
        # Section 5.3: chirp picked up within 3 s (the backup scan
        # period), system operational within ~4 s.
        engine, bss = build_bss(mic_channel=7)
        bss.start()
        engine.run_until(15_000_000.0)
        episode = bss.disconnections[0]
        assert episode.recovery_time_us is not None
        assert episode.recovery_time_us <= constants.RECONNECT_BUDGET_US

    def test_vacate_is_prompt(self):
        engine, bss = build_bss(mic_channel=7)
        bss.start()
        engine.run_until(15_000_000.0)
        episode = bss.disconnections[0]
        # Detection within a couple of sensing intervals.
        assert episode.vacated_us - episode.mic_onset_us <= 300_000.0

    def test_traffic_resumes_after_recovery(self):
        engine, bss = build_bss(mic_channel=7)
        bss.start()
        engine.run_until(15_000_000.0)
        client_node = bss.clients[0][1]
        before = client_node.delivered_bytes
        engine.run_until(20_000_000.0)
        assert client_node.delivered_bytes > before

    def test_mic_outside_main_channel_no_disconnection(self):
        engine, bss = build_bss(mic_channel=27)
        bss.start()
        engine.run_until(10_000_000.0)
        assert bss.disconnections == []
        assert bss.ap_ctrl.state.main_channel.width_mhz == 20.0
