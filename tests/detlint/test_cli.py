"""The detlint CLI: exit codes, JSON artifact, baseline update, stats."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.detlint.cli import main
from repro.detlint.engine import FINDINGS_SCHEMA

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

BAD_MODULE = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


@pytest.fixture
def repo(tmp_path, monkeypatch):
    """A minimal fake repo the CLI runs in (cwd-relative defaults)."""
    pkg = tmp_path / "src" / "repro" / "fakemod"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_MODULE)
    (tmp_path / "detlint.toml").write_text(
        '[detlint]\npaths = ["src/repro"]\n'
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestGate:
    def test_new_finding_exits_1(self, repo, capsys):
        assert main([]) == 1
        out = capsys.readouterr().out
        assert "src/repro/fakemod/bad.py:4: DET001" in out
        assert "1 new" in out

    def test_clean_tree_exits_0(self, repo, capsys):
        (repo / "src/repro/fakemod/bad.py").write_text("x = 1\n")
        assert main([]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_explicit_paths_override_config(self, repo, capsys):
        clean = repo / "other.py"
        clean.write_text("x = 1\n")
        assert main(["other.py"]) == 0

    def test_config_error_exits_2(self, repo, capsys):
        (repo / "detlint.toml").write_text("[detlint]\nbogus_key = 1\n")
        assert main([]) == 2
        assert "unknown keys" in capsys.readouterr().err


class TestArtifacts:
    def test_out_writes_schema_tagged_json(self, repo, capsys):
        main(["--out", "artifacts/detlint.json"])
        payload = json.loads((repo / "artifacts/detlint.json").read_text())
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["id"] == (
            "src/repro/fakemod/bad.py:4:DET001"
        )
        assert "DET001" in payload["rules"]

    def test_json_stdout_format(self, repo, capsys):
        main(["--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FINDINGS_SCHEMA

    def test_stats_flag_prints_tables(self, repo, capsys):
        main(["--stats"])
        out = capsys.readouterr().out
        assert "per-rule:" in out
        assert "DET001" in out
        assert "repro.fakemod" in out

    def test_list_rules(self, repo, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005", "DET006"):
            assert code in out


class TestBaselineFlow:
    def test_update_then_gate_passes_then_stale_fails(self, repo, capsys):
        # Grandfather the current findings...
        assert main(["--update-baseline"]) == 0
        baseline = json.loads((repo / "detlint.baseline.json").read_text())
        assert baseline["findings"] == ["src/repro/fakemod/bad.py:4:DET001"]
        # ...the gate now passes with the finding intact...
        assert main([]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...and fixing the hazard makes the baseline entry stale (the
        # baseline can only shrink, never silently rot).
        (repo / "src/repro/fakemod/bad.py").write_text("x = 1\n")
        assert main([]) == 1
        assert "stale baseline" in capsys.readouterr().out
        assert main(["--update-baseline"]) == 0
        assert main([]) == 0


class TestScriptEntryPoint:
    def test_scripts_detlint_runs_without_pythonpath(self):
        # scripts/detlint.py bootstraps sys.path itself (the CI job and
        # bare checkouts call it directly).
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "detlint.py"),
             "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "DET001" in proc.stdout

    def test_detlint_report_renders_artifact(self, repo):
        main(["--out", "detlint.json"])
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "detlint_report.py"),
             "detlint.json"],
            capture_output=True,
            text=True,
            cwd=repo,
        )
        assert proc.returncode == 0
        assert "by rule:" in proc.stdout
        assert "DET001" in proc.stdout
