"""Engine-level behavior: baselines, tree walking, report identity."""

import json

import pytest

from repro.detlint.config import DetlintConfig
from repro.detlint.engine import lint_paths
from repro.detlint.findings import (
    Baseline,
    DetlintError,
    load_baseline,
    write_baseline,
)

BAD_MODULE = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)

CLEAN_MODULE = "def double(x):\n    return 2 * x\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "fakemod"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_MODULE)
    (pkg / "clean.py").write_text(CLEAN_MODULE)
    return tmp_path


class TestLintPaths:
    def test_walks_tree_and_relativizes_paths(self, tree):
        report = lint_paths([tree / "src"], root=tree)
        assert report.files_checked == 2
        (finding,) = report.new
        assert finding.id == "src/repro/fakemod/bad.py:4:DET001"

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(DetlintError, match="does not exist"):
            lint_paths([tmp_path / "nope"])

    def test_deterministic_over_two_runs(self, tree):
        a = lint_paths([tree / "src"], root=tree)
        b = lint_paths([tree / "src"], root=tree)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_stats_tables(self, tree):
        stats = lint_paths([tree / "src"], root=tree).stats()
        assert stats["by_rule"]["DET001"]["new"] == 1
        assert stats["by_package"]["repro.fakemod"]["new"] == 1


class TestBaseline:
    def test_baselined_findings_pass_the_gate(self, tree):
        baseline = Baseline(
            ids=frozenset({"src/repro/fakemod/bad.py:4:DET001"})
        )
        report = lint_paths([tree / "src"], root=tree, baseline=baseline)
        assert report.new == []
        assert [f.status for f in report.baselined] == ["baselined"]
        assert report.ok

    def test_stale_baseline_entry_fails_the_gate(self, tree):
        baseline = Baseline(ids=frozenset({"src/repro/fakemod/gone.py:1:DET001"}))
        report = lint_paths([tree / "src"], root=tree, baseline=baseline)
        assert report.stale_baseline == ["src/repro/fakemod/gone.py:1:DET001"]
        assert not report.ok

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "detlint.baseline.json"
        write_baseline(path, {"b:2:DET002", "a:1:DET001"})
        baseline = load_baseline(path)
        assert baseline.ids == {"a:1:DET001", "b:2:DET002"}
        # Serialized sorted, so baseline diffs are stable.
        assert json.loads(path.read_text())["findings"] == [
            "a:1:DET001",
            "b:2:DET002",
        ]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").ids == frozenset()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(DetlintError, match="schema"):
            load_baseline(path)
        path.write_text("not json")
        with pytest.raises(DetlintError, match="not valid JSON"):
            load_baseline(path)


class TestConfig:
    def test_zone_matching_prefix_and_suffix(self):
        config = DetlintConfig()
        assert config.in_wallclock_zone("src/repro/telemetry/profiler.py")
        assert config.in_wallclock_zone("repro/telemetry/profiler.py")
        assert config.in_wallclock_zone("scripts/profile_run.py")
        assert config.in_wallclock_zone("benchmarks/bench_scale.py")
        assert not config.in_wallclock_zone("src/repro/telemetry/metrics.py")
        assert not config.in_wallclock_zone("src/repro/wsdb/service.py")

    def test_load_config_from_toml(self, tmp_path):
        from repro.detlint.config import load_config

        path = tmp_path / "detlint.toml"
        path.write_text(
            "[detlint]\n"
            'paths = ["src/repro"]\n'
            'wallclock_zones = ["repro/custom.py"]\n'
        )
        config = load_config(path)
        assert config.wallclock_zones == ("repro/custom.py",)
        assert config.in_wallclock_zone("src/repro/custom.py")
        # Unset keys keep their defaults.
        assert config.artifact_modules == ()

    def test_unknown_config_key_raises(self, tmp_path):
        from repro.detlint.config import load_config

        path = tmp_path / "detlint.toml"
        path.write_text("[detlint]\nwallclock_zone = []\n")
        with pytest.raises(DetlintError, match="unknown keys"):
            load_config(path)

    def test_missing_config_is_defaults(self, tmp_path):
        from repro.detlint.config import DEFAULT_CONFIG, load_config

        assert load_config(tmp_path / "nope.toml") == DEFAULT_CONFIG
        assert load_config(None) == DEFAULT_CONFIG
