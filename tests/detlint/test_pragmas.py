"""Pragma parsing and the DET006 hygiene rule.

The suppression mechanism polices itself: a pragma must parse, name a
registered rule, carry a non-empty reason, and actually suppress
something — anything less is itself a finding.
"""

import textwrap

from repro.detlint import lint_source, scan_pragmas
from repro.detlint.config import DetlintConfig


def lint(source):
    return lint_source(
        textwrap.dedent(source), "src/repro/wsdb/fake.py", DetlintConfig()
    )


class TestParsing:
    def test_same_line_pragma_targets_its_line(self):
        (pragma,), malformed = scan_pragmas(
            "x = f()  # detlint: ok[DET001] reason here\n"
        )
        assert malformed == ()
        assert pragma.line == 1
        assert pragma.target_line == 1
        assert pragma.codes == ("DET001",)
        assert pragma.reason == "reason here"

    def test_comment_only_line_targets_next_line(self):
        (pragma,), _ = scan_pragmas(
            "# detlint: ok[DET003] demo only\nrng = make()\n"
        )
        assert pragma.line == 1
        assert pragma.target_line == 2

    def test_multiple_codes_share_one_reason(self):
        (pragma,), _ = scan_pragmas(
            "x = f()  # detlint: ok[DET005,DET001] both clocks audited\n"
        )
        assert pragma.codes == ("DET001", "DET005")

    def test_pragma_text_inside_string_is_not_a_pragma(self):
        pragmas, malformed = scan_pragmas(
            's = "# detlint: ok[DET001] not a comment"\n'
        )
        assert pragmas == ()
        assert malformed == ()

    def test_malformed_pragma_is_collected(self):
        pragmas, malformed = scan_pragmas("x = 1  # detlint ok DET001 oops\n")
        assert pragmas == ()
        assert len(malformed) == 1
        assert malformed[0].line == 1


class TestHygiene:
    def test_missing_reason_does_not_suppress_and_flags_det006(self):
        findings = lint(
            """
            import time

            t = time.time()  # detlint: ok[DET001]
            """
        )
        codes = sorted((f.rule, f.status) for f in findings)
        assert codes == [("DET001", "new"), ("DET006", "new")]

    def test_unknown_rule_code_flags_det006(self):
        findings = lint(
            """
            x = 1  # detlint: ok[DET999] no such rule
            """
        )
        assert [(f.rule, f.status) for f in findings] == [("DET006", "new")]
        assert "unknown rule" in findings[0].message

    def test_unused_pragma_flags_det006(self):
        findings = lint(
            """
            x = 1  # detlint: ok[DET001] nothing here needs this
            """
        )
        assert [(f.rule, f.status) for f in findings] == [("DET006", "new")]
        assert "unused suppression" in findings[0].message

    def test_partially_used_multi_code_pragma_flags_unused_half(self):
        findings = lint(
            """
            import time

            t = time.time()  # detlint: ok[DET001,DET003] timing demo
            """
        )
        assert sorted((f.rule, f.status) for f in findings) == [
            ("DET001", "suppressed"),
            ("DET006", "new"),
        ]

    def test_malformed_pragma_comment_flags_det006(self):
        findings = lint(
            """
            import time

            t = time.time()  # detlint ok[DET001] missing colon
            """
        )
        assert sorted(f.rule for f in findings) == ["DET001", "DET006"]

    def test_clean_pragma_produces_no_hygiene_findings(self):
        findings = lint(
            """
            import time

            t = time.time()  # detlint: ok[DET001] startup banner only
            """
        )
        assert [(f.rule, f.status) for f in findings] == [
            ("DET001", "suppressed")
        ]
