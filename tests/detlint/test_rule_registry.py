"""The detlint rule registry mirrors the RunKind registry contract."""

import pytest

from repro.detlint.findings import DetlintError
from repro.detlint.rules import (
    Rule,
    get_rule,
    register_rule,
    rule_codes,
    unregister_rule,
)

BUILTIN_CODES = ("DET001", "DET002", "DET003", "DET004", "DET005")


class ToyRule(Rule):
    code = "TOY001"
    title = "toy"
    summary = "a test-only rule"

    def check(self, module):
        return []


class TestRegistry:
    def test_builtins_registered_sorted(self):
        assert rule_codes() == BUILTIN_CODES

    def test_register_unregister_roundtrip(self):
        rule = ToyRule()
        register_rule(rule)
        try:
            assert get_rule("TOY001") is rule
            assert "TOY001" in rule_codes()
        finally:
            assert unregister_rule("TOY001") is rule
        assert rule_codes() == BUILTIN_CODES

    def test_duplicate_code_rejected(self):
        register_rule(ToyRule())
        try:
            with pytest.raises(DetlintError, match="already registered"):
                register_rule(ToyRule())
        finally:
            unregister_rule("TOY001")

    def test_codeless_rule_rejected(self):
        class Codeless(Rule):
            def check(self, module):
                return []

        with pytest.raises(DetlintError, match="non-empty string"):
            register_rule(Codeless())

    def test_unknown_lookups_raise_with_sorted_codes(self):
        with pytest.raises(DetlintError, match=str(BUILTIN_CODES)):
            get_rule("DET999")
        with pytest.raises(DetlintError, match="not registered"):
            unregister_rule("DET999")

    def test_custom_rule_reaches_the_engine(self):
        from repro.detlint import lint_source
        from repro.detlint.config import DetlintConfig

        class EvalRule(Rule):
            code = "TOY002"
            title = "no-eval"
            summary = "flags eval calls"

            def check(self, module):
                import ast

                for node in module.walk():
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "eval"
                    ):
                        yield self.finding(module, node, "eval is banned")

        register_rule(EvalRule())
        try:
            findings = lint_source(
                "x = eval('1+1')\n", "src/repro/fake.py", DetlintConfig()
            )
            assert [f.rule for f in findings] == ["TOY002"]
            # ...and its code is pragma-suppressible like any built-in.
            findings = lint_source(
                "x = eval('1+1')  # detlint: ok[TOY002] constant\n",
                "src/repro/fake.py",
                DetlintConfig(),
            )
            assert [f.status for f in findings] == ["suppressed"]
        finally:
            unregister_rule("TOY002")
