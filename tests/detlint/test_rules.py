"""Fixtures corpus for the built-in DET rules.

Every rule gets at least one true positive, one true negative, and one
pragma-suppressed case, run through :func:`lint_source` exactly as the
CLI would — the corpus *is* the rule spec.
"""

import textwrap

import pytest

from repro.detlint import lint_source
from repro.detlint.config import DetlintConfig


def lint(source, relpath="src/repro/wsdb/fake.py", config=None):
    return lint_source(
        textwrap.dedent(source), relpath, config or DetlintConfig()
    )


def new_codes(findings):
    return [f.rule for f in findings if f.status == "new"]


def suppressed_codes(findings):
    return [f.rule for f in findings if f.status == "suppressed"]


class TestDet001WallClock:
    def test_true_positive_time_time(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert new_codes(findings) == ["DET001"]
        assert "time.time" in findings[0].message

    def test_true_positive_aliased_from_import(self):
        findings = lint(
            """
            from time import perf_counter as pc

            def stamp():
                return pc()
            """
        )
        assert new_codes(findings) == ["DET001"]

    def test_true_positive_datetime_now(self):
        findings = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert new_codes(findings) == ["DET001"]

    def test_true_positive_bare_reference_as_default(self):
        # Referencing the clock (e.g. as an injectable default) is as
        # hazardous as calling it: the default *will* be called.
        findings = lint(
            """
            import time

            def make(clock=time.perf_counter):
                return clock()
            """
        )
        assert new_codes(findings) == ["DET001"]

    def test_true_negative_sim_time_variable(self):
        findings = lint(
            """
            def advance(t_us, tick_us):
                time = t_us + tick_us  # a sim-clock local, not the module
                return time
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_inside_wallclock_zone(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            relpath="src/repro/telemetry/profiler.py",
        )
        assert new_codes(findings) == []

    def test_true_negative_scripts_zone(self):
        findings = lint(
            """
            import time

            t0 = time.monotonic()
            """,
            relpath="scripts/bench_something.py",
        )
        assert new_codes(findings) == []

    def test_pragma_suppressed(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()  # detlint: ok[DET001] boot banner only, never enters a report
            """
        )
        assert new_codes(findings) == []
        assert suppressed_codes(findings) == ["DET001"]
        assert findings[0].reason.startswith("boot banner")


class TestDet002SetIteration:
    def test_true_positive_for_over_set_call(self):
        findings = lint(
            """
            def drain(registry, before):
                for name in set(registry) - before:
                    del registry[name]
            """
        )
        assert new_codes(findings) == ["DET002"]

    def test_true_positive_comprehension_over_set_literal(self):
        findings = lint(
            """
            def rows(a, b):
                return [x * 2 for x in {a, b}]
            """
        )
        assert new_codes(findings) == ["DET002"]

    def test_true_positive_return_set_comprehension(self):
        findings = lint(
            """
            def widths(exchanges):
                return {e.width for e in exchanges}
            """
        )
        assert new_codes(findings) == ["DET002"]

    def test_true_positive_unsorted_listdir(self):
        findings = lint(
            """
            import os

            def entries(path):
                return [e for e in os.listdir(path)]
            """
        )
        assert new_codes(findings) == ["DET002"]

    def test_true_positive_list_materializes_set(self):
        findings = lint(
            """
            def order(items):
                return list(set(items))
            """
        )
        assert new_codes(findings) == ["DET002"]

    def test_true_negative_sorted_set(self):
        findings = lint(
            """
            def drain(registry, before):
                for name in sorted(set(registry) - before):
                    del registry[name]
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_sorted_listdir_and_dict_iteration(self):
        findings = lint(
            """
            import os

            def entries(path, table):
                for key in table:  # dict iteration is insertion-ordered
                    pass
                return sorted(os.listdir(path))
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_frozenset_return(self):
        # frozenset(...) signals membership-only consumption.
        findings = lint(
            """
            def widths(exchanges):
                return frozenset(e.width for e in exchanges)
            """
        )
        assert new_codes(findings) == []

    def test_pragma_suppressed(self):
        findings = lint(
            """
            def drain(counts):
                return sum(c for c in set(counts))  # detlint: ok[DET002] sum is order-independent
            """
        )
        assert new_codes(findings) == []
        assert suppressed_codes(findings) == ["DET002"]


class TestDet003UnseededRng:
    def test_true_positive_bare_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                return rng.random()
            """
        )
        assert new_codes(findings) == ["DET003"]

    def test_true_positive_module_level_random(self):
        findings = lint(
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """
        )
        assert new_codes(findings) == ["DET003"]

    def test_true_positive_legacy_numpy_global_api(self):
        findings = lint(
            """
            import numpy as np

            def noise(n):
                return np.random.normal(0.0, 1.0, n)
            """
        )
        assert new_codes(findings) == ["DET003"]
        assert "legacy" in findings[0].message

    def test_true_positive_unseeded_random_class(self):
        findings = lint(
            """
            import random

            def make():
                return random.Random()
            """
        )
        assert new_codes(findings) == ["DET003"]

    def test_true_positive_default_factory(self):
        findings = lint(
            """
            import random
            from dataclasses import dataclass, field

            @dataclass
            class Client:
                rng: random.Random = field(default_factory=random.Random)
            """
        )
        assert new_codes(findings) == ["DET003"]

    def test_true_negative_seeded_constructions(self):
        findings = lint(
            """
            import random

            import numpy as np

            def make(seed):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed=seed)
                c = random.Random(seed)
                return a, b, c
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_generator_methods_and_annotations(self):
        # Methods on a local Generator resolve to nothing — only the
        # module-level APIs are global state.
        findings = lint(
            """
            import numpy as np

            def sample(rng: np.random.Generator) -> float:
                return rng.random() + rng.normal()
            """
        )
        assert new_codes(findings) == []

    def test_pragma_suppressed(self):
        findings = lint(
            """
            import numpy as np

            def demo():
                return np.random.default_rng()  # detlint: ok[DET003] interactive example, output unused
            """
        )
        assert new_codes(findings) == []
        assert suppressed_codes(findings) == ["DET003"]


class TestDet004UnsortedJson:
    def test_true_positive_dumps_in_writer_module(self):
        findings = lint(
            """
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    fh.write(json.dumps(payload))
            """
        )
        assert new_codes(findings) == ["DET004"]

    def test_true_positive_dump_via_write_text(self):
        findings = lint(
            """
            import json
            from pathlib import Path

            def save(path, payload):
                Path(path).write_text(json.dumps(payload, indent=2))
            """
        )
        assert new_codes(findings) == ["DET004"]

    def test_true_positive_sort_keys_false(self):
        findings = lint(
            """
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh, sort_keys=False)
            """
        )
        # json.dump is both the write op and the unsorted call.
        assert new_codes(findings) == ["DET004"]

    def test_true_negative_sorted_keys(self):
        findings = lint(
            """
            import json
            from pathlib import Path

            def save(path, payload):
                Path(path).write_text(
                    json.dumps(payload, sort_keys=True) + "\\n"
                )
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_non_writer_module(self):
        # A module that never writes files may dumps for hashing or
        # error messages without sorting.
        findings = lint(
            """
            import json

            def spec_hash_material(payload):
                return json.dumps(payload)
            """
        )
        assert new_codes(findings) == []

    def test_configured_artifact_module_needs_sorting_anyway(self):
        config = DetlintConfig(
            artifact_modules=("repro/wsdb/fake.py",)
        )
        findings = lint(
            """
            import json

            def render(payload):
                return json.dumps(payload)
            """,
            config=config,
        )
        assert new_codes(findings) == ["DET004"]

    def test_pragma_suppressed(self):
        findings = lint(
            """
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    fh.write(json.dumps(payload))  # detlint: ok[DET004] payload is a pre-sorted list, not a dict
            """
        )
        assert new_codes(findings) == []
        assert suppressed_codes(findings) == ["DET004"]


class TestDet005ClockMixing:
    MIXED = """
        from repro.telemetry.profiler import NULL_PROFILER

        def drive(telemetry, profiler):
            with profiler.phase("tick"):
                pass
            telemetry.counter("ticks").inc()
        """

    def test_true_positive_phase_and_publish_in_one_function(self):
        findings = lint(self.MIXED)
        assert new_codes(findings) == ["DET005"]
        assert "drive" in findings[0].message

    def test_true_negative_separate_functions(self):
        findings = lint(
            """
            from repro.telemetry.profiler import NULL_PROFILER

            def timed(profiler):
                with profiler.phase("tick"):
                    pass

            def publish(telemetry):
                telemetry.counter("ticks").inc()
            """
        )
        assert new_codes(findings) == []

    def test_true_negative_module_without_profiler_import(self):
        # The rule is scoped to modules that import the profiler; a
        # .phase() method elsewhere (e.g. signal phases) is not a clock.
        findings = lint(
            """
            def drive(telemetry, wave):
                wave.phase("unwrap")
                telemetry.counter("ticks").inc()
            """
        )
        assert new_codes(findings) == []

    def test_pragma_suppressed_on_def_line(self):
        findings = lint(
            """
            from repro.telemetry.profiler import NULL_PROFILER

            # detlint: ok[DET005] phases time stages only; published values are sim-clock data
            def drive(telemetry, profiler):
                with profiler.phase("tick"):
                    pass
                telemetry.counter("ticks").inc()
            """
        )
        assert new_codes(findings) == []
        assert suppressed_codes(findings) == ["DET005"]


class TestFindingShape:
    def test_stable_ids_and_sorted_order(self):
        findings = lint(
            """
            import time

            import numpy as np

            def f():
                a = np.random.default_rng()
                return time.time(), a
            """,
            relpath="src/repro/wsdb/fake.py",
        )
        assert [f.id for f in findings] == [
            "src/repro/wsdb/fake.py:7:DET003",
            "src/repro/wsdb/fake.py:8:DET001",
        ]
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        )

    def test_package_bucketing(self):
        (finding,) = lint(
            """
            import time

            t = time.time()
            """,
            relpath="src/repro/phy/fake.py",
        )
        assert finding.package == "repro.phy"

    def test_syntax_error_is_hard_failure(self):
        from repro.detlint.findings import DetlintError

        with pytest.raises(DetlintError, match="cannot parse"):
            lint("def broken(:\n    pass")
