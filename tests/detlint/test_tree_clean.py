"""Meta-test: the live src/repro tree is finding-free against the
shipped policy and baseline.

This is the determinism gate run *as a test*, so `pytest` alone (the
tier-1 command) fails on a new hazard even before `make detlint` or CI
gets a look.  It exercises the exact checked-in detlint.toml +
detlint.baseline.json the Makefile gate uses.
"""

from pathlib import Path

from repro.detlint.config import load_config
from repro.detlint.engine import lint_paths
from repro.detlint.findings import load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def run_live_tree():
    config = load_config(REPO_ROOT / "detlint.toml")
    baseline = load_baseline(REPO_ROOT / "detlint.baseline.json")
    paths = [REPO_ROOT / p for p in config.paths]
    return lint_paths(paths, config=config, baseline=baseline, root=REPO_ROOT)


def test_live_tree_has_no_new_findings():
    report = run_live_tree()
    assert report.files_checked > 80  # the whole tree, not a subset
    offenders = [
        f"{f.id}: {f.message}" for f in report.new
    ]
    assert offenders == [], (
        "determinism linter found unsuppressed hazards:\n"
        + "\n".join(offenders)
    )


def test_live_baseline_is_empty_and_not_stale():
    # The gate landed strict: nothing grandfathered.  If this ever has
    # to change, the baseline file makes the debt explicit — but start
    # from zero.
    baseline = load_baseline(REPO_ROOT / "detlint.baseline.json")
    assert baseline.ids == frozenset()
    assert run_live_tree().stale_baseline == []


def test_live_suppressions_all_carry_reasons():
    report = run_live_tree()
    for finding in report.suppressed:
        assert finding.reason.strip(), f"{finding.id} suppressed without reason"
    # Today's accepted debt: the two vector drivers that profile tick
    # phases while publishing sim metrics (documented discipline).
    assert len(report.suppressed) <= 4, (
        "suppression debt is growing; justify new pragmas in review "
        f"({[f.id for f in report.suppressed]})"
    )
