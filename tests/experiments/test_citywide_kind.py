"""Tests for the "citywide" run kind on the RunKind plugin API."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentSpec,
    ParallelRunner,
    ScenarioSpec,
    run_experiment,
    run_kind_names,
)

FREE = tuple(range(4, 18))


def citywide_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=300e6, seed=13
        ),
        kind="citywide",
        citywide_aps=25,
        citywide_mic_events=4,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRegistration:
    def test_citywide_in_run_kinds(self):
        assert "citywide" in run_kind_names()

    def test_requires_ap_count(self):
        with pytest.raises(SimulationError, match="citywide_aps"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE), kind="citywide"
            )

    def test_rejects_invalid_knobs(self):
        with pytest.raises(SimulationError):
            citywide_spec(citywide_aps=0)
        with pytest.raises(SimulationError):
            citywide_spec(citywide_extent_km=-1.0)
        with pytest.raises(SimulationError):
            citywide_spec(citywide_mic_events=-2)

    def test_rejects_ignored_scenario_features(self):
        from repro.experiments import MicSpec

        with pytest.raises(SimulationError):
            citywide_spec(channel=(7, 5.0))
        with pytest.raises(SimulationError):
            citywide_spec(timeline_interval_us=1e6)
        with pytest.raises(SimulationError):
            citywide_spec(
                scenario=ScenarioSpec(
                    free_indices=FREE,
                    mics=(MicSpec(5, ((0.0, 1.0),)),),
                )
            )

    def test_citywide_knobs_rejected_on_other_kinds(self):
        with pytest.raises(SimulationError, match="citywide_aps"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                citywide_aps=10,
            )


class TestExecution:
    def test_metrics_and_typed_fields(self):
        result = run_experiment(citywide_spec())
        assert result.kind == "citywide"
        assert result.metric("num_aps") == 25
        assert result.metric("assigned_aps") + result.metric("unserved_aps") == 25
        assert result.aggregate_mbps > 0
        assert result.per_client_mbps > 0
        assert result.duration_us == 300e6
        assert 0.0 <= result.metric("availability_disagreement") <= 1.0
        assert result.metric("db_queries") > 0
        assert result.metric("db_cache_hits") > 0
        assert 0.0 <= result.metric("db_hit_rate") <= 1.0

    def test_spec_json_round_trip(self):
        spec = citywide_spec(citywide_extent_km=12.5)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_deterministic_per_seed(self):
        a = run_experiment(citywide_spec())
        b = run_experiment(citywide_spec())
        assert a.to_json() == b.to_json()
        c = run_experiment(citywide_spec().with_seed(99))
        assert c.to_json() != a.to_json()

    def test_parallel_sequential_byte_identical(self):
        specs = [citywide_spec(), citywide_spec().with_seed(21)]
        sequential = ParallelRunner(max_workers=1).run_grid(specs)
        parallel = ParallelRunner(max_workers=2).run_grid(specs)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]

    def test_result_json_round_trip(self):
        from repro.experiments import ExperimentResult

        result = run_experiment(citywide_spec())
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result
