"""Tests for the parallel sweep runner, result aggregation, and caching."""

import pytest

from repro.experiments import (
    BackgroundSpec,
    ExperimentSpec,
    ParallelRunner,
    ResultCache,
    ScenarioSpec,
    mean_by,
    summarize,
    sweep_seeds,
)

FIVE_FREE = tuple(range(5, 10))


def quick_spec(kind="static", **scenario_overrides) -> ExperimentSpec:
    defaults = dict(
        free_indices=FIVE_FREE,
        num_channels=30,
        backgrounds=(BackgroundSpec(5, 30_000.0),),
        duration_us=200_000.0,
        warmup_us=50_000.0,
        seed=1,
    )
    defaults.update(scenario_overrides)
    scenario = ScenarioSpec(**defaults)
    if kind == "static":
        return ExperimentSpec(scenario, kind="static", channel=(7, 10.0))
    return ExperimentSpec(scenario, kind=kind)


class TestSweepSeeds:
    def test_deterministic_and_distinct(self):
        assert sweep_seeds(2009, 8) == sweep_seeds(2009, 8)
        assert len(set(sweep_seeds(2009, 8))) == 8
        assert sweep_seeds(2009, 8) != sweep_seeds(2010, 8)

    def test_prefix_stable(self):
        # Growing a sweep keeps the already-computed cells' seeds.
        assert sweep_seeds(5, 10)[:4] == sweep_seeds(5, 4)


class TestGridExpansion:
    def test_specs_outer_seeds_inner(self):
        specs = [quick_spec(), quick_spec(kind="whitefi")]
        grid = ParallelRunner.expand_grid(specs, seeds=(11, 22))
        assert [s.scenario.seed for s in grid] == [11, 22, 11, 22]
        assert [s.kind for s in grid] == ["static", "static", "whitefi", "whitefi"]

    def test_no_seeds_runs_specs_verbatim(self):
        spec = quick_spec()
        assert ParallelRunner.expand_grid(spec) == [spec]


class TestParallelSequentialEquivalence:
    def test_byte_identical_results_discovery_kind(self):
        spec = ExperimentSpec(
            ScenarioSpec(free_indices=tuple(range(4, 12)), seed=5),
            kind="discovery",
            discovery_algorithm="j-sift",
        )
        seeds = sweep_seeds(13, 3)
        sequential = ParallelRunner(max_workers=1).run_grid(spec, seeds)
        parallel = ParallelRunner(max_workers=4).run_grid(spec, seeds)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]
        assert all(r.metric("discovery_succeeded") for r in sequential)

    def test_byte_identical_results_sift_kind(self):
        spec = ExperimentSpec(
            ScenarioSpec(free_indices=FIVE_FREE, seed=5),
            kind="sift",
            sift_width_mhz=10.0,
            sift_rate_mbps=0.5,
            sift_num_packets=15,
        )
        seeds = sweep_seeds(17, 3)
        sequential = ParallelRunner(max_workers=1).run_grid(spec, seeds)
        parallel = ParallelRunner(max_workers=4).run_grid(spec, seeds)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]
        assert summarize(sequential, metric="detection_rate") == summarize(
            parallel, metric="detection_rate"
        )

    def test_byte_identical_results(self):
        # The acceptance bar: N>=4 workers produce byte-identical
        # aggregated results to the in-process sequential fallback.
        spec = quick_spec()
        seeds = sweep_seeds(7, 3)
        sequential = ParallelRunner(max_workers=1).run_grid(spec, seeds)
        parallel = ParallelRunner(max_workers=4).run_grid(spec, seeds)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]
        assert summarize(sequential) == summarize(parallel)

    def test_results_in_grid_order(self):
        spec = quick_spec()
        seeds = sweep_seeds(3, 4)
        results = ParallelRunner(max_workers=4).run_grid(spec, seeds)
        assert [r.seed for r in results] == list(seeds)

    def test_negative_workers_raise(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=-1)


class TestResultCache:
    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        [result] = ParallelRunner(max_workers=1, cache=cache).run_grid(spec)
        assert spec.spec_hash in cache
        assert cache.get(spec.spec_hash) == result

    def test_second_sweep_fully_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(max_workers=1, cache=cache)
        spec = quick_spec()
        seeds = sweep_seeds(1, 2)
        first = runner.run_grid(spec, seeds)
        assert runner.last_execution_mode == "sequential"
        second = runner.run_grid(spec, seeds)
        assert runner.last_execution_mode == "cached"
        assert [r.to_json() for r in first] == [r.to_json() for r in second]

    def test_different_spec_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run_grid(quick_spec())
        runner.run_grid(quick_spec(seed=2))
        assert runner.last_execution_mode == "sequential"

    def test_missing_entry_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("deadbeef") is None


class TestAggregation:
    def test_summarize(self):
        results = ParallelRunner(max_workers=1).run_grid(
            quick_spec(), sweep_seeds(9, 3)
        )
        stats = summarize(results, metric="aggregate_mbps")
        assert stats.count == 3
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.stddev >= 0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_mean_by_groups(self):
        specs = [quick_spec(), quick_spec(kind="whitefi")]
        results = ParallelRunner(max_workers=1).run_grid(
            specs, sweep_seeds(4, 2)
        )
        means = mean_by(results, key=lambda r: r.kind)
        assert set(means) == {"static", "whitefi"}
        assert all(v > 0 for v in means.values())


@pytest.mark.slow
@pytest.mark.skipif(
    (__import__("os").cpu_count() or 1) < 2,
    reason="wall-clock speedup needs more than one CPU",
)
def test_workers_beat_sequential_wall_clock():
    # On multi-core hosts the fan-out must pay for itself.  (Single-CPU
    # containers exercise only the byte-identical equivalence above.)
    import time

    spec = quick_spec(
        kind="whitefi", duration_us=1_500_000.0, backgrounds=()
    )
    seeds = sweep_seeds(77, 4)

    start = time.perf_counter()
    sequential = ParallelRunner(max_workers=1).run_grid(spec, seeds)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelRunner(max_workers=4).run_grid(spec, seeds)
    parallel_s = time.perf_counter() - start

    assert [r.to_json() for r in sequential] == [r.to_json() for r in parallel]
    assert parallel_s < sequential_s, (parallel_s, sequential_s)


def test_corrupted_cache_entry_is_a_miss(tmp_path):
    spec = quick_spec()
    cache = ResultCache(tmp_path)
    # Plant the corruption inside the versioned entry directory the
    # cache actually reads from.
    cache.directory.mkdir(parents=True)
    entry = cache.directory / f"{spec.spec_hash}.json"
    entry.write_text("{corrupted!")
    runner = ParallelRunner(max_workers=1, cache=cache)
    [result] = runner.run_grid(spec)
    assert runner.last_execution_mode == "sequential"
    # The entry was overwritten with a good record.
    assert ResultCache(tmp_path).get(spec.spec_hash) == result
    assert "corrupted" not in entry.read_text()


def test_duplicate_grid_cells_share_one_execution(tmp_path):
    cache = ResultCache(tmp_path)
    spec = quick_spec()
    runner = ParallelRunner(max_workers=1, cache=cache)
    a, b = runner.run_grid([spec, spec])
    assert a.to_json() == b.to_json()
    # Only one entry was computed and cached.
    assert len(list(cache.directory.glob("*.json"))) == 1


def test_unwritable_cache_does_not_abort_sweep(tmp_path):
    # chmod tricks are unreliable under root; fail the write directly.
    class UnwritableCache(ResultCache):
        def put(self, result):
            raise OSError("disk full")

    runner = ParallelRunner(max_workers=1, cache=UnwritableCache(tmp_path))
    [result] = runner.run_grid(quick_spec())
    assert result.aggregate_mbps >= 0
    assert runner.last_execution_mode == "sequential"
