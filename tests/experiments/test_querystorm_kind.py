"""Tests for the "querystorm" run kind on the RunKind plugin API."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentSpec,
    ParallelRunner,
    ScenarioSpec,
    run_experiment,
    run_kind_names,
)

FREE = tuple(range(4, 18))


def storm_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=60e6, seed=13
        ),
        kind="querystorm",
        citywide_aps=8,
        roaming_clients=6,
        citywide_extent_km=3.0,
        citywide_mic_events=2,
        storm_shards=4,
        storm_offered_qps=80.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRegistration:
    def test_querystorm_in_run_kinds(self):
        assert "querystorm" in run_kind_names()

    def test_requires_shards_and_aps(self):
        with pytest.raises(SimulationError, match="storm_shards"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="querystorm",
                citywide_aps=8,
            )
        with pytest.raises(SimulationError, match="citywide_aps"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="querystorm",
                storm_shards=4,
            )

    def test_rejects_invalid_knobs(self):
        with pytest.raises(SimulationError):
            storm_spec(storm_shards=0)
        with pytest.raises(SimulationError):
            storm_spec(storm_offered_qps=-1.0)
        with pytest.raises(SimulationError):
            storm_spec(storm_rate_limit_qps=0.0)
        with pytest.raises(SimulationError, match="storm_shed_policy"):
            storm_spec(storm_shed_policy="drop-table")
        with pytest.raises(SimulationError):
            storm_spec(roaming_clients=-1)
        with pytest.raises(SimulationError):
            storm_spec(roaming_speed_mps=0.0)
        with pytest.raises(SimulationError):
            storm_spec(roaming_recheck_m=-5.0)
        with pytest.raises(SimulationError):
            storm_spec(citywide_extent_km=0.0)
        with pytest.raises(SimulationError):
            storm_spec(citywide_mic_events=-1)

    def test_infeasible_shard_grid_fails_at_construction(self):
        # More shard columns than response cells per axis must fail
        # eagerly (spec construction), not mid-fan-out in a runner.
        with pytest.raises(SimulationError, match="response cells"):
            storm_spec(
                storm_shards=64,
                citywide_extent_km=0.5,
                roaming_recheck_m=100.0,
            )
        # The same count is fine once the recheck cell shrinks.
        storm_spec(
            storm_shards=64, citywide_extent_km=0.5, roaming_recheck_m=50.0
        )

    def test_clientless_storm_is_legal(self):
        # A pure storm (no mobile population) is a valid service-tier
        # load test; roaming itself still demands >= 1 client.
        storm_spec(roaming_clients=0)
        storm_spec(roaming_clients=None)
        with pytest.raises(SimulationError, match="roaming_clients"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="roaming",
                citywide_aps=8,
                roaming_clients=0,
            )

    def test_rejects_ignored_scenario_features(self):
        from repro.experiments import MicSpec

        with pytest.raises(SimulationError):
            storm_spec(channel=(7, 5.0))
        with pytest.raises(SimulationError):
            storm_spec(timeline_interval_us=1e6)
        with pytest.raises(SimulationError):
            storm_spec(
                scenario=ScenarioSpec(
                    free_indices=FREE,
                    mics=(MicSpec(5, ((0.0, 1.0),)),),
                )
            )

    def test_storm_knobs_rejected_on_other_kinds(self):
        with pytest.raises(SimulationError, match="storm_shards"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                storm_shards=4,
            )
        # The roaming kind shares the mobility knobs but not the
        # cluster ones.
        with pytest.raises(SimulationError, match="storm_push"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="roaming",
                citywide_aps=8,
                roaming_clients=5,
                storm_push=True,
            )

    def test_mobility_knobs_shared_with_roaming(self):
        # roaming_* and citywide_* are legal on both kinds.
        storm_spec(roaming_speed_mps=10.0, roaming_recheck_m=150.0)
        ExperimentSpec(
            ScenarioSpec(free_indices=FREE),
            kind="roaming",
            citywide_aps=8,
            roaming_clients=5,
            roaming_speed_mps=10.0,
            roaming_recheck_m=150.0,
        )


class TestExecution:
    def test_metrics_and_typed_fields(self):
        result = run_experiment(storm_spec())
        assert result.kind == "querystorm"
        assert result.duration_us == 60e6
        assert result.metric("num_shards") == 4
        assert result.metric("shard_grid") == (2, 2)
        assert result.metric("num_clients") == 6
        assert result.metric("storm_queries") > 0
        assert result.metric("frontend_requests") >= result.metric(
            "storm_queries"
        )
        assert result.metric("frontend_shed") == 0  # no rate limit set
        assert 0.0 <= result.metric("connected_fraction") <= 1.0
        assert 0.0 <= result.metric("violation_free_fraction") <= 1.0
        assert result.metric("db_queries") > 0
        assert result.metric("db_candidates_per_query") > 0
        assert len(result.metric("per_shard")) == 4

    def test_push_knob_reaches_the_driver(self):
        pull = run_experiment(storm_spec())
        push = run_experiment(storm_spec(storm_push=True))
        assert pull.metric("push") is False
        assert push.metric("push") is True
        assert pull.metric("push_stats", default=None) is None
        assert push.metric("push_subscriptions") == 6

    def test_rate_limit_and_policy_reach_the_frontend(self):
        # A starved frontend sheds via the declarative surface too —
        # the admission path is not bench-only.
        limited = run_experiment(
            storm_spec(storm_offered_qps=300.0, storm_rate_limit_qps=50.0)
        )
        assert limited.metric("rate_limit_qps") == 50.0
        assert limited.metric("frontend_shed") > 0
        assert limited.metric("frontend_served_stale") == 0
        stale = run_experiment(
            storm_spec(
                storm_offered_qps=300.0,
                storm_rate_limit_qps=50.0,
                storm_shed_policy="serve-stale",
            )
        )
        assert stale.metric("shed_policy") == "serve-stale"
        assert stale.metric("frontend_served_stale") > 0

    def test_shards_knob_reaches_the_router(self):
        one = run_experiment(storm_spec(storm_shards=1))
        many = run_experiment(storm_spec(storm_shards=9))
        assert one.metric("num_shards") == 1
        assert len(many.metric("per_shard")) == 9
        # Same scenario, same physics: the mobile population's story
        # is identical at any shard count.
        for key in ("requeries", "handoffs", "violation_ticks"):
            assert one.metric(key) == many.metric(key)

    def test_spec_json_round_trip(self):
        spec = storm_spec(
            storm_push=True, roaming_speed_mps=20.0, storm_offered_qps=120
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash
        assert clone.storm_offered_qps == 120.0

    def test_deterministic_per_seed(self):
        a = run_experiment(storm_spec())
        b = run_experiment(storm_spec())
        assert a.to_json() == b.to_json()
        c = run_experiment(storm_spec().with_seed(99))
        assert c.to_json() != a.to_json()

    def test_parallel_sequential_byte_identical(self):
        specs = [storm_spec(), storm_spec(storm_push=True).with_seed(21)]
        sequential = ParallelRunner(max_workers=1).run_grid(specs)
        parallel = ParallelRunner(max_workers=2).run_grid(specs)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]

    def test_result_json_round_trip(self):
        from repro.experiments import ExperimentResult

        result = run_experiment(storm_spec())
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result


class TestEngineKnob:
    def test_engine_accepted(self):
        assert storm_spec(engine="vector").engine == "vector"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            storm_spec(engine="simd")

    def test_vector_engine_result_matches_scalar(self):
        scalar = run_experiment(storm_spec(engine="scalar", storm_push=True))
        vector = run_experiment(storm_spec(engine="vector", storm_push=True))
        assert vector.metrics == scalar.metrics
