"""Tests for the RunKind registry: dispatch, hygiene, and the Probe API."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentSpec,
    RunKind,
    ScenarioSpec,
    get_run_kind,
    register_run_kind,
    run_experiment,
    run_kind_names,
    unregister_run_kind,
)
from repro.experiments.registry import probe_metrics

BUILTIN_KINDS = (
    "citywide",
    "discovery",
    "opt",
    "protocol",
    "querystorm",
    "replay",
    "roaming",
    "sift",
    "static",
    "whitefi",
)


def scenario(**overrides) -> ScenarioSpec:
    defaults = dict(
        free_indices=tuple(range(5, 10)),
        duration_us=200_000.0,
        warmup_us=50_000.0,
        seed=3,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class _ToyProbe:
    name = "toy"

    def extract(self, raw):
        return {"aggregate_mbps": 1.5, "echo_seed": raw["spec"].scenario.seed}


class ToyKind(RunKind):
    name = "toy"
    summary = "test double"
    probes = (_ToyProbe(),)

    def execute(self, spec):
        return {"spec": spec}


@pytest.fixture
def toy_kind():
    kind = register_run_kind(ToyKind())
    yield kind
    unregister_run_kind("toy")


class TestRegistryHygiene:
    def test_builtins_registered_sorted(self):
        assert run_kind_names() == BUILTIN_KINDS

    def test_run_kinds_derived_from_registry(self, toy_kind):
        # RUN_KINDS is a live view of the registry, importable from the
        # package and from the spec module.
        import repro.experiments
        import repro.experiments.spec

        assert "toy" in repro.experiments.RUN_KINDS
        assert "toy" in repro.experiments.spec.RUN_KINDS
        assert repro.experiments.RUN_KINDS == tuple(sorted(BUILTIN_KINDS + ("toy",)))

    def test_duplicate_registration_raises(self):
        class Shadow(RunKind):
            name = "static"

            def execute(self, spec):
                return {}

        with pytest.raises(SimulationError, match="already registered"):
            register_run_kind(Shadow())

    def test_nameless_kind_rejected(self):
        class Nameless(RunKind):
            def execute(self, spec):
                return {}

        with pytest.raises(SimulationError, match="non-empty string"):
            register_run_kind(Nameless())

    def test_unknown_kind_error_lists_sorted_kinds(self):
        from repro.errors import UnknownRunKindError

        with pytest.raises(UnknownRunKindError) as err:
            get_run_kind("quantum")
        assert str(BUILTIN_KINDS) in str(err.value)

    def test_failed_builtin_import_rolls_back_cleanly(self, monkeypatch):
        # A plugin squatting on a built-in name before the built-ins
        # load makes the kinds import fail; the partial registrations
        # must roll back so the root-cause error repeats identically
        # instead of wedging the registry.
        import sys

        import repro.experiments.registry as reg

        kinds_module = sys.modules["repro.experiments.kinds"]
        saved = dict(reg._REGISTRY)
        try:
            reg._REGISTRY.clear()
            monkeypatch.setattr(reg, "_BUILTINS_LOADED", False)
            sys.modules.pop("repro.experiments.kinds")

            class Squatter(RunKind):
                name = "whitefi"

                def execute(self, spec):
                    return {}

            reg._REGISTRY["whitefi"] = Squatter()
            for _ in range(2):  # identical failure on every access
                with pytest.raises(
                    SimulationError, match="'whitefi' is already registered"
                ):
                    run_kind_names()
                assert set(reg._REGISTRY) == {"whitefi"}
        finally:
            reg._REGISTRY.clear()
            reg._REGISTRY.update(saved)
            sys.modules["repro.experiments.kinds"] = kinds_module

    def test_unregister_unknown_raises(self):
        with pytest.raises(SimulationError):
            unregister_run_kind("quantum")

    def test_rollback_cleanup_order_is_sorted(self, monkeypatch):
        # Determinism contract (detlint DET002): the rollback iterates
        # a set difference, so the deletion order must be explicitly
        # sorted — not whatever hash order this interpreter produced.
        import sys

        import repro.experiments.registry as reg

        class TrackingDict(dict):
            deletions: list = []

            def __delitem__(self, key):
                TrackingDict.deletions.append(key)
                super().__delitem__(key)

        kinds_module = sys.modules["repro.experiments.kinds"]
        saved = dict(reg._REGISTRY)
        tracking = TrackingDict()
        TrackingDict.deletions = []
        try:
            monkeypatch.setattr(reg, "_REGISTRY", tracking)
            monkeypatch.setattr(reg, "_BUILTINS_LOADED", False)
            sys.modules.pop("repro.experiments.kinds")

            class Squatter(RunKind):
                name = "sift"  # registers sixth: five partials roll back

                def execute(self, spec):
                    return {}

            tracking["sift"] = Squatter()
            with pytest.raises(SimulationError, match="already registered"):
                run_kind_names()
            # The five kinds registered before the collision were
            # removed -- in sorted order, not registration or hash order.
            assert TrackingDict.deletions == sorted(TrackingDict.deletions)
            assert set(TrackingDict.deletions) == {
                "static", "whitefi", "opt", "protocol", "discovery"
            }
            assert set(tracking) == {"sift"}
        finally:
            reg._REGISTRY = saved  # monkeypatch restores the attr anyway
            sys.modules["repro.experiments.kinds"] = kinds_module


class TestPluginDispatch:
    def test_spec_accepts_registered_kind(self, toy_kind):
        spec = ExperimentSpec(scenario(), kind="toy")
        assert spec.kind == "toy"
        # ...and JSON round-trips like any built-in.
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_run_experiment_dispatches_to_plugin(self, toy_kind):
        result = run_experiment(ExperimentSpec(scenario(seed=11), kind="toy"))
        assert result.kind == "toy"
        # Probe keys matching result fields populate the typed record;
        # the rest land in the per-kind metrics payload.
        assert result.aggregate_mbps == 1.5
        assert result.metric("echo_seed") == 11
        assert result.metric("missing", default="x") == "x"

    def test_spec_rejects_unregistered_kind(self):
        with pytest.raises(SimulationError, match="unknown run kind"):
            ExperimentSpec(scenario(), kind="toy")


class TestProbeMetrics:
    def test_duplicate_probe_key_raises(self):
        with pytest.raises(SimulationError, match="re-emits"):
            probe_metrics((_ToyProbe(), _ToyProbe()), {"spec": ExperimentSpec(scenario())})

    def test_field_metric_split(self):
        fields, metrics = probe_metrics(
            (_ToyProbe(),), {"spec": ExperimentSpec(scenario())}
        )
        assert fields == {"aggregate_mbps": 1.5}
        assert metrics == (("echo_seed", 3),)


class TestMetricsPayloadNormalization:
    def test_dict_metric_values_stay_round_trippable(self):
        # A plugin probe may emit a dict; the result must stay hashable
        # and byte-identical through JSON (dict keys stringify in JSON,
        # so dicts are frozen into sorted pairs).
        from repro.experiments import ExperimentResult

        result = ExperimentResult(
            kind="toy",
            spec_hash="abc",
            seed=1,
            metrics=(("histogram", {5: 2, 3: 1}),),
        )
        assert result.metric("histogram") == ((3, 1), (5, 2))
        hash(result)  # hashable
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.to_json() == result.to_json()

    def test_payload_metric_not_shadowed_by_result_attributes(self):
        from repro.experiments import ExperimentResult, metric_value, summarize

        result = ExperimentResult(
            kind="toy",
            spec_hash="abc",
            seed=1,
            channel_history=((0.0, 7, 20.0), (1.0, 9, 10.0)),
            metrics=(("final_channel", 42.0),),
        )
        # Payload entries win over same-named properties/methods...
        assert metric_value(result, "final_channel") == 42.0
        # ...derived numeric properties still work when no entry exists...
        assert metric_value(result, "num_switches") == 1.0
        # ...and methods or missing names raise the documented error.
        with pytest.raises(ValueError):
            metric_value(result, "to_dict")
        with pytest.raises(ValueError):
            summarize([result], metric="nonexistent")


class TestDispatchEquivalence:
    def test_no_per_kind_branches_in_run_experiment(self):
        # The acceptance bar: dispatch is a registry lookup, not a
        # kind-name if/elif ladder.
        import inspect

        import repro.experiments.registry as registry

        source = inspect.getsource(registry.run_experiment)
        for kind in BUILTIN_KINDS:
            assert f"'{kind}'" not in source and f'"{kind}"' not in source
