"""Tests for the "replay" run kind: a recorded storm trace re-driven
through the cluster with querystorm-comparable metrics."""

import pytest

from repro.errors import SimulationError
from repro.experiments import run_experiment, run_kind_names
from repro.experiments.scenario import ScenarioBuilder
from repro.experiments.spec import ExperimentSpec, ScenarioSpec
from repro.traces.record import TraceRecorder
from repro.wsdb.cluster import simulate_querystorm

FREE = tuple(range(4, 18))

#: Extra metric keys the replay probe layers on top of querystorm's.
REPLAY_EXTRAS = ("storm_trace", "replayed_queries")


def storm_scenario() -> ScenarioSpec:
    return ScenarioSpec(free_indices=FREE, duration_us=40e6, seed=11)


def storm_knobs() -> dict:
    return dict(
        scenario=storm_scenario(),
        storm_shards=2,
        storm_offered_qps=40.0,
        storm_push=True,
        citywide_aps=6,
        citywide_mic_events=4,
        roaming_clients=8,
    )


def replay_spec(trace_path, **overrides) -> ExperimentSpec:
    knobs = storm_knobs()
    knobs.update(overrides)
    return ExperimentSpec(kind="replay", storm_trace=str(trace_path), **knobs)


@pytest.fixture
def recorded_trace(tmp_path):
    """A trace recorded from the run the querystorm kind would execute."""
    from repro.experiments.kinds import _citywide_extent_m, _roaming_kwargs

    spec = ExperimentSpec(kind="querystorm", **storm_knobs())
    router = ScenarioBuilder(spec.scenario).build_wsdb_cluster(
        num_shards=spec.storm_shards,
        extent_m=_citywide_extent_m(spec),
        cache_resolution_m=spec.roaming_recheck_m,
    )
    path = tmp_path / "storm.jsonl.gz"
    with TraceRecorder(path) as recorder:
        simulate_querystorm(
            router,
            num_aps=spec.citywide_aps,
            num_clients=spec.roaming_clients,
            duration_us=spec.scenario.duration_us,
            seed=spec.scenario.seed,
            offered_qps=spec.storm_offered_qps,
            push=True,
            mic_events=spec.citywide_mic_events,
            recorder=recorder,
            **_roaming_kwargs(spec),
        )
    return path


class TestRegistration:
    def test_replay_in_run_kinds(self):
        assert "replay" in run_kind_names()

    def test_requires_storm_trace(self):
        with pytest.raises(SimulationError, match="storm_trace"):
            ExperimentSpec(kind="replay", **storm_knobs())

    def test_inherits_querystorm_validation(self, tmp_path):
        with pytest.raises(SimulationError, match="storm_shards"):
            replay_spec(tmp_path / "t.jsonl.gz", storm_shards=0)
        # The inherited message names the actual kind, not 'querystorm'.
        with pytest.raises(SimulationError, match="'replay'"):
            replay_spec(tmp_path / "t.jsonl.gz", storm_shards=None)

    def test_storm_trace_is_querystorm_and_replay_only(self):
        with pytest.raises(SimulationError, match="storm_trace"):
            ExperimentSpec(
                scenario=storm_scenario(),
                kind="roaming",
                citywide_aps=6,
                roaming_clients=4,
                storm_trace="x.jsonl.gz",
            )


class TestSpecHash:
    def test_trace_path_participates(self, tmp_path):
        a = replay_spec(tmp_path / "a.jsonl.gz")
        b = replay_spec(tmp_path / "b.jsonl.gz")
        assert a.spec_hash != b.spec_hash

    def test_querystorm_accepts_trace_knob(self, tmp_path):
        knobs = storm_knobs()
        plain = ExperimentSpec(kind="querystorm", **knobs)
        traced = ExperimentSpec(
            kind="querystorm", storm_trace=str(tmp_path / "t.gz"), **knobs
        )
        assert plain.spec_hash != traced.spec_hash


class TestExecution:
    def test_replay_metrics_match_source_querystorm(self, recorded_trace):
        source = run_experiment(ExperimentSpec(kind="querystorm", **storm_knobs()))
        replay = run_experiment(replay_spec(recorded_trace))

        assert replay.kind == "replay"
        assert replay.metric("storm_trace") == str(recorded_trace)
        assert replay.metric("replayed_queries") == source.metric(
            "storm_queries"
        )

        source_metrics = dict(source.metrics)
        replay_metrics = dict(replay.metrics)
        for key in REPLAY_EXTRAS:
            replay_metrics.pop(key)
        assert replay_metrics == source_metrics

    def test_vector_replay_matches_scalar_source(self, recorded_trace):
        pytest.importorskip("numpy")
        source = run_experiment(ExperimentSpec(kind="querystorm", **storm_knobs()))
        replay = run_experiment(replay_spec(recorded_trace, engine="vector"))
        source_metrics = dict(source.metrics)
        replay_metrics = dict(replay.metrics)
        for key in REPLAY_EXTRAS:
            replay_metrics.pop(key)
        source_metrics.pop("engine", None)
        replay_metrics.pop("engine", None)
        assert replay_metrics == source_metrics

    def test_missing_trace_file_raises(self, tmp_path):
        with pytest.raises(SimulationError, match="no trace file"):
            run_experiment(replay_spec(tmp_path / "absent.jsonl.gz"))
