"""JSON archival round-trip for deeply nested per-kind metrics.

The querystorm probe publishes the deepest metrics payload in the
repo — per-shard WSDB stat dicts, per-client accounting tuples, and
final cell coordinates — so it is the stress case for
``ExperimentResult.to_json`` / ``from_json`` fidelity."""

from repro.experiments import run_experiment
from repro.experiments.results import ExperimentResult
from repro.experiments.spec import ExperimentSpec, ScenarioSpec

FREE = tuple(range(4, 18))


def storm_result() -> ExperimentResult:
    spec = ExperimentSpec(
        scenario=ScenarioSpec(free_indices=FREE, duration_us=30e6, seed=5),
        kind="querystorm",
        citywide_aps=6,
        roaming_clients=6,
        citywide_mic_events=3,
        storm_shards=4,
        storm_offered_qps=50.0,
        storm_push=True,
    )
    return run_experiment(spec)


class TestNestedMetricsRoundTrip:
    def test_querystorm_result_survives_json(self):
        result = storm_result()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result

    def test_nested_payloads_restored_value_for_value(self):
        result = storm_result()
        restored = ExperimentResult.from_json(result.to_json())

        # Per-shard WSDB stats: dicts of mixed int/float values,
        # canonicalized by the result's freeze into sorted (key, value)
        # pairs (hit_rate is a float ratio).
        shards = restored.metric("per_shard")
        assert shards == result.metric("per_shard")
        assert len(shards) == 4
        for frozen in shards:
            stats = dict(frozen)
            assert stats["queries"] == int(stats["queries"])
            assert isinstance(stats["hit_rate"], float)

        # Per-client accounting rows and final cell coordinates: nested
        # integer tuples.
        assert restored.metric("per_client") == result.metric("per_client")
        assert restored.metric("final_cells") == result.metric("final_cells")

    def test_double_roundtrip_is_stable(self):
        result = storm_result()
        once = ExperimentResult.from_json(result.to_json())
        twice = ExperimentResult.from_json(once.to_json())
        assert twice == once
        assert twice.to_json() == once.to_json()
