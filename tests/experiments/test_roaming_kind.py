"""Tests for the "roaming" run kind on the RunKind plugin API."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentSpec,
    ParallelRunner,
    ScenarioSpec,
    run_experiment,
    run_kind_names,
)

FREE = tuple(range(4, 18))


def roaming_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=120e6, seed=13
        ),
        kind="roaming",
        citywide_aps=10,
        roaming_clients=8,
        citywide_extent_km=3.0,
        citywide_mic_events=3,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRegistration:
    def test_roaming_in_run_kinds(self):
        assert "roaming" in run_kind_names()

    def test_requires_clients_and_aps(self):
        with pytest.raises(SimulationError, match="roaming_clients"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="roaming",
                citywide_aps=10,
            )
        with pytest.raises(SimulationError, match="citywide_aps"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="roaming",
                roaming_clients=5,
            )

    def test_rejects_invalid_knobs(self):
        with pytest.raises(SimulationError):
            roaming_spec(roaming_clients=0)
        with pytest.raises(SimulationError):
            roaming_spec(roaming_speed_mps=0.0)
        with pytest.raises(SimulationError):
            roaming_spec(roaming_recheck_m=-5.0)
        with pytest.raises(SimulationError):
            roaming_spec(citywide_extent_km=0.0)
        with pytest.raises(SimulationError):
            roaming_spec(citywide_mic_events=-1)

    def test_rejects_ignored_scenario_features(self):
        from repro.experiments import MicSpec

        with pytest.raises(SimulationError):
            roaming_spec(channel=(7, 5.0))
        with pytest.raises(SimulationError):
            roaming_spec(timeline_interval_us=1e6)
        with pytest.raises(SimulationError):
            roaming_spec(
                scenario=ScenarioSpec(
                    free_indices=FREE,
                    mics=(MicSpec(5, ((0.0, 1.0),)),),
                )
            )

    def test_roaming_knobs_rejected_on_other_kinds(self):
        with pytest.raises(SimulationError, match="roaming_clients"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                roaming_clients=10,
            )
        # The citywide kind shares the deployment knobs but not the
        # mobility ones.
        with pytest.raises(SimulationError, match="roaming_speed_mps"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="citywide",
                citywide_aps=10,
                roaming_speed_mps=20.0,
            )

    def test_deployment_knobs_shared_with_citywide(self):
        # citywide_aps / extent / mic_events are legal on both wsdb
        # kinds; construction must not raise.
        roaming_spec()
        ExperimentSpec(
            ScenarioSpec(free_indices=FREE),
            kind="citywide",
            citywide_aps=10,
            citywide_extent_km=3.0,
            citywide_mic_events=3,
        )


class TestExecution:
    def test_metrics_and_typed_fields(self):
        result = run_experiment(roaming_spec())
        assert result.kind == "roaming"
        assert result.duration_us == 120e6
        assert result.metric("num_clients") == 8
        assert result.metric("num_aps") == 10
        assert result.metric("requeries") > 0
        assert 0.0 <= result.metric("connected_fraction") <= 1.0
        assert 0.0 <= result.metric("violation_free_fraction") <= 1.0
        assert result.metric("db_queries") > 0
        assert 0.0 <= result.metric("db_hit_rate") <= 1.0
        ticks = int(120e6 // result.metric("tick_us")) + 1
        assert (
            result.metric("connected_ticks")
            + result.metric("disconnected_ticks")
            == 8 * ticks
        )

    def test_recheck_knob_reaches_the_database(self):
        # A coarser re-check cell means fewer boundary crossings and
        # fewer queries than the 100 m default on identical paths.
        coarse = run_experiment(roaming_spec(roaming_recheck_m=400.0))
        fine = run_experiment(roaming_spec(roaming_recheck_m=50.0))
        assert coarse.metric("recheck_m") == 400.0
        assert coarse.metric("requeries") < fine.metric("requeries")

    def test_spec_json_round_trip(self):
        spec = roaming_spec(
            roaming_speed_mps=20.0, roaming_recheck_m=150.0
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash == spec.spec_hash

    def test_deterministic_per_seed(self):
        a = run_experiment(roaming_spec())
        b = run_experiment(roaming_spec())
        assert a.to_json() == b.to_json()
        c = run_experiment(roaming_spec().with_seed(99))
        assert c.to_json() != a.to_json()

    def test_parallel_sequential_byte_identical(self):
        specs = [roaming_spec(), roaming_spec().with_seed(21)]
        sequential = ParallelRunner(max_workers=1).run_grid(specs)
        parallel = ParallelRunner(max_workers=2).run_grid(specs)
        assert [r.to_json() for r in sequential] == [
            r.to_json() for r in parallel
        ]

    def test_result_json_round_trip(self):
        from repro.experiments import ExperimentResult

        result = run_experiment(roaming_spec())
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result


class TestEngineKnob:
    def test_engine_accepted_and_normalized(self):
        assert roaming_spec(engine="vector").engine == "vector"
        assert roaming_spec(engine="scalar").engine == "scalar"
        assert roaming_spec().engine is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            roaming_spec(engine="turbo")

    def test_engine_rejected_outside_owner_kinds(self):
        with pytest.raises(SimulationError, match="does not use engine"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="citywide",
                citywide_aps=5,
                engine="vector",
            )
        with pytest.raises(SimulationError, match="does not use engine"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                engine="scalar",
            )

    def test_vector_engine_result_matches_scalar(self):
        scalar = run_experiment(roaming_spec(engine="scalar"))
        vector = run_experiment(roaming_spec(engine="vector"))
        default = run_experiment(roaming_spec())
        assert vector.metrics == scalar.metrics
        assert default.metrics == scalar.metrics

    def test_engine_participates_in_spec_hash(self):
        # Same semantics, different spec: the cache key must separate
        # them (the spec records the engine even though reports match).
        assert (
            roaming_spec(engine="vector").spec_hash
            != roaming_spec().spec_hash
        )
