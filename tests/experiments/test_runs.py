"""Tests for run_experiment dispatch and the structured result record."""
import pytest


from repro.experiments import (
    BackgroundSpec,
    ExperimentSpec,
    ExperimentResult,
    MicSpec,
    ScenarioSpec,
    run_experiment,
    run_static,
)
from repro.experiments.scenario import build_config
from repro.spectrum.channels import WhiteFiChannel

FIVE_FREE = tuple(range(5, 10))


def scenario(**overrides) -> ScenarioSpec:
    defaults = dict(
        free_indices=FIVE_FREE,
        num_channels=30,
        duration_us=600_000.0,
        warmup_us=100_000.0,
        seed=7,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestStaticKind:
    def test_matches_direct_run(self):
        spec = ExperimentSpec(scenario(), kind="static", channel=(7, 20.0))
        result = run_experiment(spec)
        legacy = run_static(build_config(spec.scenario), WhiteFiChannel(7, 20.0))
        assert result.aggregate_mbps == legacy.aggregate_mbps
        assert result.kind == "static"
        assert result.seed == 7
        assert result.final_channel == (7, 20.0)
        assert result.num_switches == 0

    def test_airtime_recorded_on_spanned_channels(self):
        spec = ExperimentSpec(scenario(), kind="static", channel=(7, 20.0))
        result = run_experiment(spec)
        # A saturating flow keeps its span busy most of the time.
        assert result.airtime_fraction(7) > 0.5
        assert result.airtime_fraction(20) == 0.0

    def test_json_round_trip(self):
        spec = ExperimentSpec(scenario(), kind="static", channel=(7, 10.0))
        result = run_experiment(spec)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.to_json() == result.to_json()


class TestWhiteFiKind:
    def test_runs_and_archives(self):
        spec = ExperimentSpec(
            scenario(duration_us=1_500_000.0),
            kind="whitefi",
            reeval_interval_us=500_000.0,
        )
        result = run_experiment(spec)
        assert result.kind == "whitefi"
        assert result.aggregate_mbps > 0
        assert result.final_channel is not None
        assert len(result.mcham_timeline) >= 2
        # Clean fragment: the widest channel wins.
        assert result.final_channel[1] == 20.0

    def test_deterministic_in_spec(self):
        spec = ExperimentSpec(scenario(), kind="whitefi")
        assert run_experiment(spec).to_json() == run_experiment(spec).to_json()

    def test_timeline_sampling(self):
        spec = ExperimentSpec(
            scenario(duration_us=600_000.0),
            kind="whitefi",
            timeline_interval_us=200_000.0,
        )
        result = run_experiment(spec)
        assert len(result.throughput_timeline) == 3


class TestOptKind:
    def test_overall_is_best_of_widths(self):
        spec = ExperimentSpec(
            scenario(), kind="opt", probe_duration_us=300_000.0
        )
        result = run_experiment(spec)
        assert result.kind == "opt"
        names = [name for name, _ in result.baselines]
        assert names == ["opt-5mhz", "opt-10mhz", "opt-20mhz"]
        for name, sub in result.baselines:
            if sub is not None:
                assert result.aggregate_mbps >= sub.aggregate_mbps
        assert result.baseline("opt-20mhz") is not None

    def test_unavailable_width_is_none(self):
        spec = ExperimentSpec(
            scenario(free_indices=(3, 7)),
            kind="opt",
            probe_duration_us=200_000.0,
        )
        result = run_experiment(spec)
        assert result.baseline("opt-20mhz") is None
        assert result.baseline("opt-5mhz") is not None

    def test_json_round_trip_with_baselines(self):
        spec = ExperimentSpec(
            scenario(), kind="opt", probe_duration_us=200_000.0
        )
        result = run_experiment(spec)
        assert ExperimentResult.from_json(result.to_json()) == result


class TestProtocolKind:
    def test_disconnection_timeline_recorded(self):
        spec = ExperimentSpec(
            scenario(
                free_indices=(5, 6, 7, 8, 9, 12, 13, 14, 18, 27),
                mics=(MicSpec(7, sessions=((3_000_000.0, 1e12),)),),
                seed=3,
            ),
            kind="protocol",
            run_until_us=15_000_000.0,
        )
        result = run_experiment(spec)
        assert result.kind == "protocol"
        assert result.aggregate_mbps > 0
        assert len(result.disconnections) == 1
        episode = result.disconnections[0]
        assert episode.mic_onset_us >= 3_000_000.0
        assert episode.vacated_us is not None
        assert episode.chirp_heard_us is not None
        assert episode.recovery_time_us is not None
        assert 7 not in WhiteFiChannel(*episode.new_channel).spanned_indices
        # Boot on the 20 MHz fragment, recovery elsewhere.
        assert result.channel_history[0][1:] == (7, 20.0)
        assert result.final_channel != (7, 20.0)

    def test_no_mic_no_disconnections(self):
        spec = ExperimentSpec(
            scenario(free_indices=(5, 6, 7, 8, 9, 12, 13, 14, 18, 27)),
            kind="protocol",
            run_until_us=3_000_000.0,
        )
        result = run_experiment(spec)
        assert result.disconnections == ()
        assert result.num_switches == 0

    def test_json_round_trip_with_episodes(self):
        spec = ExperimentSpec(
            scenario(
                free_indices=(5, 6, 7, 8, 9, 12, 13, 14, 18, 27),
                mics=(MicSpec(7, sessions=((2_000_000.0, 1e12),)),),
            ),
            kind="protocol",
            run_until_us=12_000_000.0,
        )
        result = run_experiment(spec)
        assert ExperimentResult.from_json(result.to_json()) == result


class TestDiscoveryKind:
    def race(self, algorithm: str, **scenario_overrides) -> ExperimentResult:
        spec = ExperimentSpec(
            scenario(**scenario_overrides),
            kind="discovery",
            discovery_algorithm=algorithm,
        )
        return run_experiment(spec)

    def test_finds_the_hidden_ap(self):
        result = self.race("l-sift")
        assert result.kind == "discovery"
        assert result.metric("discovery_succeeded") is True
        # The discovered channel is the hidden ground truth, and it is
        # also the run's single switch-log entry.
        assert result.metric("discovered_channel") == result.metric("ap_channel")
        assert result.final_channel == tuple(result.metric("discovered_channel"))
        assert result.metric("discovery_us") == result.duration_us > 0

    def test_same_scenario_same_ap_across_algorithms(self):
        # The AP placement derives from the scenario seed only, so the
        # three algorithms race toward the same hidden AP.
        outcomes = {
            algo: self.race(algo).metric("ap_channel")
            for algo in ("baseline", "l-sift", "j-sift")
        }
        assert len(set(map(tuple, outcomes.values()))) == 1

    def test_sift_beats_baseline_on_wide_fragment(self):
        free = tuple(range(0, 20))
        baseline = self.race("baseline", free_indices=free)
        j_sift = self.race("j-sift", free_indices=free)
        assert baseline.metric("sift_scans") == 0
        assert j_sift.metric("sift_scans") > 0
        assert j_sift.metric("discovery_us") < baseline.metric("discovery_us")

    def test_deterministic_in_spec(self):
        spec = ExperimentSpec(
            scenario(), kind="discovery", discovery_algorithm="j-sift"
        )
        assert run_experiment(spec).to_json() == run_experiment(spec).to_json()

    def test_empty_map_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="at least one candidate"):
            self.race("l-sift", free_indices=())


class TestSiftKind:
    def accuracy(self, **spec_overrides) -> ExperimentResult:
        defaults = dict(
            kind="sift",
            sift_width_mhz=20.0,
            sift_rate_mbps=0.5,
            sift_num_packets=30,
        )
        defaults.update(spec_overrides)
        return run_experiment(ExperimentSpec(scenario(), **defaults))

    def test_detects_most_packets(self):
        result = self.accuracy()
        assert result.kind == "sift"
        assert result.metric("sift_sent") == 30
        assert result.metric("detection_rate") >= 0.9
        assert 0.0 < result.metric("airtime_measured") < 1.0

    def test_confusion_counts_dominated_by_true_width(self):
        result = self.accuracy()
        assert result.metric("true_width_mhz") == 20.0
        counts = dict(result.metric("width_counts"))
        assert counts.get(20.0, 0) == max(counts.values())
        assert result.metric("classification_accuracy") >= 0.9

    def test_deterministic_in_spec_and_seed_sensitive(self):
        a = self.accuracy()
        b = self.accuracy()
        assert a.to_json() == b.to_json()
        reseeded = run_experiment(
            ExperimentSpec(
                scenario(seed=8),
                kind="sift",
                sift_width_mhz=20.0,
                sift_rate_mbps=0.5,
                sift_num_packets=30,
            )
        )
        assert reseeded.spec_hash != a.spec_hash

    def test_json_round_trip_with_metrics_payload(self):
        result = self.accuracy()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.metric("width_counts") == result.metric("width_counts")


class TestBackgroundEffects:
    def test_background_reduces_static_throughput(self):
        quiet = run_experiment(
            ExperimentSpec(scenario(), kind="static", channel=(7, 20.0))
        )
        busy = run_experiment(
            ExperimentSpec(
                scenario(
                    backgrounds=tuple(
                        BackgroundSpec(i, 20_000.0) for i in FIVE_FREE
                    )
                ),
                kind="static",
                channel=(7, 20.0),
            )
        )
        assert busy.aggregate_mbps < quiet.aggregate_mbps


class TestTimelineWindows:
    def test_partial_final_window_not_diluted(self):
        # duration 500k with 200k sampling: windows of 200/200/100k us.
        # The final partial window must divide by its true 100k span —
        # a saturating flow then reports comparable Mbps in every
        # window instead of half in the last.
        spec = ExperimentSpec(
            scenario(duration_us=500_000.0),
            kind="static",
            channel=(7, 20.0),
            timeline_interval_us=200_000.0,
        )
        result = run_experiment(spec)
        assert len(result.throughput_timeline) == 3
        samples = [mbps for _, mbps in result.throughput_timeline]
        assert samples[-1] > 0.6 * max(samples)
        # Span-weighted timeline mean must reproduce the aggregate.
        weighted = (
            samples[0] * 200_000.0
            + samples[1] * 200_000.0
            + samples[2] * 100_000.0
        ) / 500_000.0
        assert weighted == pytest.approx(result.aggregate_mbps)
