"""Tests for scenario resolution and world building."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    BackgroundPoolSpec,
    BackgroundSpec,
    ScenarioBuilder,
    ScenarioConfig,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)
from repro.experiments.scenario import build_config
from repro.spectrum.spectrum_map import SpectrumMap

FIVE_FREE = tuple(range(5, 10))


def spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        free_indices=FIVE_FREE,
        num_channels=30,
        duration_us=500_000.0,
        warmup_us=100_000.0,
        seed=7,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestBuildConfig:
    def test_base_map_from_free_indices(self):
        config = build_config(spec())
        assert config.base_map == SpectrumMap.from_free(FIVE_FREE, 30)
        assert config.num_channels == 30

    def test_traffic_model_applied(self):
        config = build_config(
            spec(traffic=TrafficSpec(uplink=False, payload_bytes=700))
        )
        assert config.downlink and not config.uplink
        assert config.payload_bytes == 700

    def test_explicit_backgrounds_preserved(self):
        backgrounds = (BackgroundSpec(5, 1e4), BackgroundSpec(6, 2e4))
        config = build_config(spec(backgrounds=backgrounds))
        assert tuple(config.backgrounds) == backgrounds

    def test_pool_per_free_channel(self):
        config = build_config(
            spec(background_pool=BackgroundPoolSpec(per_free_channel=2))
        )
        placed = [b.uhf_index for b in config.backgrounds]
        assert placed == [i for i in FIVE_FREE for _ in range(2)]

    def test_pool_random_placement_deterministic_in_seed(self):
        pool = BackgroundPoolSpec(random_count=6)
        a = build_config(spec(background_pool=pool, seed=3))
        b = build_config(spec(background_pool=pool, seed=3))
        c = build_config(spec(background_pool=pool, seed=4))
        indices = lambda cfg: [bg.uhf_index for bg in cfg.backgrounds]
        assert indices(a) == indices(b)
        assert indices(a) != indices(c)
        assert all(i in FIVE_FREE for i in indices(a))

    def test_pool_churn_propagates(self):
        config = build_config(
            spec(
                background_pool=BackgroundPoolSpec(
                    per_free_channel=1, churn=(1e6, 2e6)
                )
            )
        )
        assert all(b.churn == (1e6, 2e6) for b in config.backgrounds)

    def test_spatial_variation_derives_per_node_maps(self):
        config = build_config(
            spec(num_clients=4, spatial=SpatialSpec(flip_probability=0.3))
        )
        assert config.ap_map is not None
        assert len(config.client_maps) == 4
        maps = [config.ap_map, *config.client_maps]
        assert any(m != config.base_map for m in maps)
        # Same seed -> same maps.
        again = build_config(
            spec(num_clients=4, spatial=SpatialSpec(flip_probability=0.3))
        )
        assert [config.ap_map, *config.client_maps] == [
            again.ap_map,
            *again.client_maps,
        ]

    def test_explicit_maps_override(self):
        config = build_config(
            spec(
                num_clients=1,
                ap_free_indices=(5, 6),
                client_free_indices=((6, 7),),
            )
        )
        assert config.effective_ap_map().free_indices() == (5, 6)
        assert config.effective_client_maps()[0].free_indices() == (6, 7)
        assert config.union_map().free_indices() == (6,)


class TestScenarioBuilder:
    def test_accepts_spec_or_config(self):
        from_spec = ScenarioBuilder(spec())
        from_config = ScenarioBuilder(from_spec.config)
        assert isinstance(from_config.config, ScenarioConfig)
        assert from_spec.config.base_map == from_config.config.base_map

    def test_world_builds_background_pairs(self):
        builder = ScenarioBuilder(
            spec(backgrounds=(BackgroundSpec(5, 1e4), BackgroundSpec(7, 1e4)))
        )
        world = builder.build_world()
        assert set(world.nodes) == {"bg0-ap", "bg0-cl", "bg1-ap", "bg1-cl"}
        assert world.engine is world.roster.engine
        assert world.medium is world.roster.medium

    def test_background_on_occupied_channel_raises(self):
        builder = ScenarioBuilder(spec(backgrounds=(BackgroundSpec(0, 1e4),)))
        with pytest.raises(SimulationError):
            builder.build_world()

    def test_worlds_are_independent(self):
        builder = ScenarioBuilder(spec(backgrounds=(BackgroundSpec(5, 1e4),)))
        a, b = builder.build_world(), builder.build_world()
        a.engine.run_until(200_000.0)
        assert b.engine.now_us == 0.0
        # Determinism: same config -> identical event streams.
        b.engine.run_until(200_000.0)
        assert a.engine.events_fired == b.engine.events_fired

    def test_protocol_bss_needs_spec(self):
        builder = ScenarioBuilder(build_config(spec()))
        with pytest.raises(SimulationError):
            builder.build_protocol_bss()

    def test_protocol_bss_wires_incumbents(self):
        from repro.experiments import MicSpec

        builder = ScenarioBuilder(
            spec(mics=(MicSpec(7, sessions=((1e6, 2e6),)),))
        )
        engine, medium, incumbents, bss = builder.build_protocol_bss()
        assert incumbents.mic_active_on(7, 1_500_000.0)
        assert not incumbents.mic_active_on(7, 2_500_000.0)
        # TV stations cover exactly the occupied base-map channels.
        occupied = set(builder.config.base_map.occupied_indices())
        assert occupied <= incumbents.occupied_indices(0.0)
        assert bss.ap_node.node_id == "ap"
