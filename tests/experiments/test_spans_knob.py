"""Tests for the ``spans`` / ``span_sample`` knobs on the spec layer.

The knobs are owned by the roaming, querystorm, and replay kinds.
``spans="on"`` attaches a sim-clock :class:`SpanRecorder` to the run
and surfaces its table under the ``"spans"`` metrics key; ``"off"``
and the default ``None`` leave every result byte-identical to a
pre-spans run.  ``span_sample`` refines ``spans="on"`` with a
deterministic sampling policy and is rejected without it.
"""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    ScenarioSpec,
    run_experiment,
)
from repro.telemetry.spans import SPANS_SCHEMA

FREE = tuple(range(4, 18))


def storm_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=3e6, seed=13
        ),
        kind="querystorm",
        citywide_aps=8,
        roaming_clients=6,
        citywide_extent_km=3.0,
        citywide_mic_events=2,
        storm_shards=4,
        storm_offered_qps=80.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def roaming_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=3e6, seed=13
        ),
        kind="roaming",
        citywide_aps=8,
        roaming_clients=6,
        citywide_extent_km=3.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestValidation:
    def test_modes_accepted(self):
        for mode in (None, "off", "on"):
            assert storm_spec(spans=mode).spans == mode

    def test_bogus_mode_rejected(self):
        with pytest.raises(SimulationError, match="spans"):
            storm_spec(spans="maybe")

    @pytest.mark.parametrize("sample", ["off", "head-2", "head-16", "tail"])
    def test_sample_values_accepted(self, sample):
        spec = storm_spec(spans="on", span_sample=sample)
        assert spec.span_sample == sample

    def test_sample_requires_spans_on(self):
        with pytest.raises(SimulationError, match="span_sample"):
            storm_spec(span_sample="tail")
        with pytest.raises(SimulationError, match="span_sample"):
            storm_spec(spans="off", span_sample="tail")

    def test_bogus_sample_rejected(self):
        with pytest.raises(SimulationError, match="span_sample"):
            storm_spec(spans="on", span_sample="head-0")

    def test_foreign_on_whitefi_kind(self):
        with pytest.raises(SimulationError, match="spans"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                spans="on",
            )

    def test_knobs_change_spec_hash(self):
        base = storm_spec().spec_hash
        on = storm_spec(spans="on").spec_hash
        sampled = storm_spec(spans="on", span_sample="head-2").spec_hash
        assert len({base, on, sampled}) == 3


class TestExecution:
    @pytest.mark.parametrize("spec_fn", [storm_spec, roaming_spec])
    def test_on_surfaces_table(self, spec_fn):
        result = run_experiment(spec_fn(spans="on"))
        table = result.metric("spans")
        table = dict(table)
        assert table["schema"] == SPANS_SCHEMA
        assert table["traces"] > 0
        assert table["spans"]

    def test_off_and_default_match_exactly(self):
        r_none = run_experiment(storm_spec())
        r_off = run_experiment(storm_spec(spans="off"))
        assert "spans" not in dict(r_none.metrics)
        assert dict(r_off.metrics) == dict(r_none.metrics)

    def test_result_roundtrips_with_table(self):
        result = run_experiment(storm_spec(spans="on"))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert "spans" in dict(restored.metrics)

    def test_sampling_drops_traces_but_not_counts(self):
        full = dict(run_experiment(storm_spec(spans="on")).metric("spans"))
        sampled = dict(
            run_experiment(
                storm_spec(spans="on", span_sample="head-4")
            ).metric("spans")
        )
        assert sampled["sample"] == "head-4"
        assert list(sampled["latency_counts"]) == list(
            full["latency_counts"]
        )
        assert sampled["traces"] < full["traces"]

    def test_composes_with_telemetry(self):
        result = run_experiment(storm_spec(spans="on", telemetry="on"))
        metrics = dict(result.metrics)
        assert "spans" in metrics and "telemetry" in metrics
