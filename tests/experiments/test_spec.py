"""Tests for declarative scenario/experiment specs and JSON round-trips."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    BackgroundPoolSpec,
    BackgroundSpec,
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)


def rich_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=(2, 3, 4, 7, 8),
        num_channels=30,
        num_clients=3,
        backgrounds=(
            BackgroundSpec(2, 30_000.0),
            BackgroundSpec(3, 10_000.0, churn=(1_000_000.0, 2_000_000.0)),
            BackgroundSpec(4, 5_000.0, active_windows=((0.0, 1e6), (2e6, 3e6))),
        ),
        background_pool=BackgroundPoolSpec(
            random_count=4, per_free_channel=1, inter_packet_delay_us=20_000.0
        ),
        traffic=TrafficSpec(downlink=True, uplink=False, payload_bytes=500),
        spatial=SpatialSpec(flip_probability=0.05),
        duration_us=1e6,
        warmup_us=2e5,
        seed=42,
    )


def protocol_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=(2, 3, 4, 7, 8),
        num_channels=30,
        mics=(MicSpec(7, sessions=((1e6, 2e6),)),),
        duration_us=1e6,
        seed=42,
    )


class TestScenarioSpec:
    def test_json_round_trip(self):
        for spec in (rich_scenario(), protocol_scenario()):
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_canonical_json(self):
        spec = rich_scenario()
        assert ScenarioSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_lists_normalized_to_tuples(self):
        spec = ScenarioSpec(free_indices=[1, 2, 3])
        assert spec.free_indices == (1, 2, 3)
        assert spec == ScenarioSpec(free_indices=(1, 2, 3))

    def test_with_seed(self):
        spec = rich_scenario()
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.with_seed(42) == spec

    def test_churn_and_windows_exclusive(self):
        with pytest.raises(SimulationError):
            BackgroundSpec(
                5, 10_000.0, churn=(1.0, 1.0), active_windows=((0.0, 1.0),)
            )

    def test_negative_pool_counts_raise(self):
        with pytest.raises(SimulationError):
            BackgroundPoolSpec(random_count=-1)

    def test_bad_flip_probability_raises(self):
        with pytest.raises(SimulationError):
            SpatialSpec(flip_probability=1.5)


class TestExperimentSpec:
    def test_json_round_trip_all_kinds(self):
        scenario = rich_scenario()
        specs = [
            ExperimentSpec(scenario, kind="whitefi", reeval_interval_us=1e6),
            ExperimentSpec(scenario, kind="static", channel=(3, 10.0)),
            ExperimentSpec(scenario, kind="opt", probe_duration_us=5e5),
            ExperimentSpec(protocol_scenario(), kind="protocol", run_until_us=9e6),
        ]
        for spec in specs:
            assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_unknown_kind_raises(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="quantum")

    def test_static_requires_channel(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="static")

    def test_mics_rejected_outside_protocol_runs(self):
        # Non-protocol kinds never instantiate the incumbent field; a
        # silent no-op would fake Section 5.3 conditions.
        with pytest.raises(SimulationError):
            ExperimentSpec(protocol_scenario(), kind="whitefi")

    def test_backgrounds_rejected_in_protocol_runs(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="protocol")

    def test_unknown_field_raises(self):
        spec = ExperimentSpec(rich_scenario())
        data = spec.to_dict()
        data["typo_field"] = 1
        with pytest.raises(SimulationError):
            ExperimentSpec.from_dict(data)

    def test_spec_hash_stable_and_seed_sensitive(self):
        spec = ExperimentSpec(rich_scenario())
        assert spec.spec_hash == ExperimentSpec.from_json(spec.to_json()).spec_hash
        assert spec.spec_hash != spec.with_seed(99).spec_hash

    def test_spec_hash_differs_across_kinds(self):
        scenario = rich_scenario()
        a = ExperimentSpec(scenario, kind="whitefi")
        b = ExperimentSpec(scenario, kind="opt")
        assert a.spec_hash != b.spec_hash


def plain_scenario(**overrides) -> ScenarioSpec:
    defaults = dict(free_indices=(2, 3, 4, 7, 8), seed=42)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestDiscoveryKindSpec:
    def test_json_round_trip_and_canonical_form(self):
        spec = ExperimentSpec(
            plain_scenario(), kind="discovery", discovery_algorithm="j-sift"
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_spec_hash_stable_and_algorithm_sensitive(self):
        l_sift = ExperimentSpec(
            plain_scenario(), kind="discovery", discovery_algorithm="l-sift"
        )
        assert l_sift.spec_hash == ExperimentSpec.from_json(
            l_sift.to_json()
        ).spec_hash
        j_sift = ExperimentSpec(
            plain_scenario(), kind="discovery", discovery_algorithm="j-sift"
        )
        assert l_sift.spec_hash != j_sift.spec_hash
        assert l_sift.spec_hash != l_sift.with_seed(99).spec_hash

    def test_requires_algorithm(self):
        with pytest.raises(SimulationError, match="requires discovery_algorithm"):
            ExperimentSpec(plain_scenario(), kind="discovery")

    def test_unknown_algorithm_lists_known_ones(self):
        with pytest.raises(SimulationError, match="l-sift"):
            ExperimentSpec(
                plain_scenario(), kind="discovery", discovery_algorithm="warp"
            )

    def test_rejects_ignored_scenario_features(self):
        for overrides in (
            dict(backgrounds=(BackgroundSpec(2, 30_000.0),)),
            dict(mics=(MicSpec(7, sessions=((1e6, 2e6),)),)),
            dict(spatial=SpatialSpec(flip_probability=0.1)),
            dict(traffic=TrafficSpec(uplink=False)),
        ):
            with pytest.raises(SimulationError):
                ExperimentSpec(
                    plain_scenario(**overrides),
                    kind="discovery",
                    discovery_algorithm="l-sift",
                )

    def test_algorithm_rejected_on_other_kinds(self):
        with pytest.raises(SimulationError, match="discovery_algorithm"):
            ExperimentSpec(
                plain_scenario(), kind="whitefi", discovery_algorithm="l-sift"
            )


class TestSiftKindSpec:
    def sift_spec(self, **overrides) -> ExperimentSpec:
        defaults = dict(
            kind="sift",
            sift_width_mhz=10.0,
            sift_rate_mbps=0.5,
            sift_num_packets=20,
        )
        defaults.update(overrides)
        return ExperimentSpec(plain_scenario(), **defaults)

    def test_json_round_trip_and_canonical_form(self):
        spec = self.sift_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_numeric_knobs_normalized_to_one_canonical_form(self):
        # 5 vs 5.0 must share one canonical JSON form (one cache key).
        a = self.sift_spec(sift_width_mhz=20, sift_rate_mbps=1)
        b = self.sift_spec(sift_width_mhz=20.0, sift_rate_mbps=1.0)
        assert a == b
        assert a.spec_hash == b.spec_hash

    def test_spec_hash_stable_and_knob_sensitive(self):
        spec = self.sift_spec()
        assert spec.spec_hash == ExperimentSpec.from_json(spec.to_json()).spec_hash
        assert spec.spec_hash != self.sift_spec(sift_rate_mbps=1.0).spec_hash
        assert spec.spec_hash != self.sift_spec(sift_width_mhz=20.0).spec_hash
        assert spec.spec_hash != spec.with_seed(99).spec_hash

    def test_requires_width_and_rate(self):
        with pytest.raises(SimulationError, match="sift_width_mhz"):
            ExperimentSpec(plain_scenario(), kind="sift")
        with pytest.raises(SimulationError, match="sift_width_mhz"):
            ExperimentSpec(plain_scenario(), kind="sift", sift_rate_mbps=0.5)

    def test_rejects_invalid_knobs(self):
        with pytest.raises(SimulationError, match="not a WhiteFi width"):
            self.sift_spec(sift_width_mhz=7.0)
        with pytest.raises(SimulationError, match="sift_rate_mbps"):
            self.sift_spec(sift_rate_mbps=0.0)
        with pytest.raises(SimulationError, match="sift_num_packets"):
            self.sift_spec(sift_num_packets=0)

    def test_sift_knobs_rejected_on_other_kinds(self):
        with pytest.raises(SimulationError, match="sift_width_mhz"):
            ExperimentSpec(plain_scenario(), kind="opt", sift_width_mhz=10.0)
        with pytest.raises(SimulationError, match="sift_rate_mbps"):
            ExperimentSpec(
                plain_scenario(),
                kind="static",
                channel=(3, 5.0),
                sift_rate_mbps=0.5,
            )


class TestForeignKnobOwnership:
    # Every knob with a None default states intent when set; a kind
    # that would silently ignore it must reject it.
    def test_run_until_us_only_for_protocol(self):
        with pytest.raises(SimulationError, match="run_until_us"):
            ExperimentSpec(
                plain_scenario(), kind="static", channel=(3, 5.0), run_until_us=2e6
            )

    def test_whitefi_tuning_only_for_whitefi(self):
        with pytest.raises(SimulationError, match="hysteresis_margin"):
            ExperimentSpec(plain_scenario(), kind="opt", hysteresis_margin=0.0)
        with pytest.raises(SimulationError, match="ap_weight"):
            ExperimentSpec(
                plain_scenario(),
                kind="discovery",
                discovery_algorithm="l-sift",
                ap_weight=2.0,
            )
        # ...and the owner kind still accepts them.
        spec = ExperimentSpec(
            plain_scenario(), kind="whitefi", hysteresis_margin=0.0, ap_weight=2.0
        )
        assert spec.hysteresis_margin == 0.0


def test_custom_traffic_rejected_in_protocol_runs():
    scenario = ScenarioSpec(
        free_indices=(2, 3, 4),
        mics=(MicSpec(3, sessions=((1e6, 2e6),)),),
        traffic=TrafficSpec(uplink=False),
    )
    with pytest.raises(SimulationError):
        ExperimentSpec(scenario, kind="protocol")
