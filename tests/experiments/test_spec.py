"""Tests for declarative scenario/experiment specs and JSON round-trips."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    BackgroundPoolSpec,
    BackgroundSpec,
    ExperimentSpec,
    MicSpec,
    ScenarioSpec,
    SpatialSpec,
    TrafficSpec,
)


def rich_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=(2, 3, 4, 7, 8),
        num_channels=30,
        num_clients=3,
        backgrounds=(
            BackgroundSpec(2, 30_000.0),
            BackgroundSpec(3, 10_000.0, churn=(1_000_000.0, 2_000_000.0)),
            BackgroundSpec(4, 5_000.0, active_windows=((0.0, 1e6), (2e6, 3e6))),
        ),
        background_pool=BackgroundPoolSpec(
            random_count=4, per_free_channel=1, inter_packet_delay_us=20_000.0
        ),
        traffic=TrafficSpec(downlink=True, uplink=False, payload_bytes=500),
        spatial=SpatialSpec(flip_probability=0.05),
        duration_us=1e6,
        warmup_us=2e5,
        seed=42,
    )


def protocol_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        free_indices=(2, 3, 4, 7, 8),
        num_channels=30,
        mics=(MicSpec(7, sessions=((1e6, 2e6),)),),
        duration_us=1e6,
        seed=42,
    )


class TestScenarioSpec:
    def test_json_round_trip(self):
        for spec in (rich_scenario(), protocol_scenario()):
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_canonical_json(self):
        spec = rich_scenario()
        assert ScenarioSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_lists_normalized_to_tuples(self):
        spec = ScenarioSpec(free_indices=[1, 2, 3])
        assert spec.free_indices == (1, 2, 3)
        assert spec == ScenarioSpec(free_indices=(1, 2, 3))

    def test_with_seed(self):
        spec = rich_scenario()
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.with_seed(42) == spec

    def test_churn_and_windows_exclusive(self):
        with pytest.raises(SimulationError):
            BackgroundSpec(
                5, 10_000.0, churn=(1.0, 1.0), active_windows=((0.0, 1.0),)
            )

    def test_negative_pool_counts_raise(self):
        with pytest.raises(SimulationError):
            BackgroundPoolSpec(random_count=-1)

    def test_bad_flip_probability_raises(self):
        with pytest.raises(SimulationError):
            SpatialSpec(flip_probability=1.5)


class TestExperimentSpec:
    def test_json_round_trip_all_kinds(self):
        scenario = rich_scenario()
        specs = [
            ExperimentSpec(scenario, kind="whitefi", reeval_interval_us=1e6),
            ExperimentSpec(scenario, kind="static", channel=(3, 10.0)),
            ExperimentSpec(scenario, kind="opt", probe_duration_us=5e5),
            ExperimentSpec(protocol_scenario(), kind="protocol", run_until_us=9e6),
        ]
        for spec in specs:
            assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_unknown_kind_raises(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="quantum")

    def test_static_requires_channel(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="static")

    def test_mics_rejected_outside_protocol_runs(self):
        # Non-protocol kinds never instantiate the incumbent field; a
        # silent no-op would fake Section 5.3 conditions.
        with pytest.raises(SimulationError):
            ExperimentSpec(protocol_scenario(), kind="whitefi")

    def test_backgrounds_rejected_in_protocol_runs(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(rich_scenario(), kind="protocol")

    def test_unknown_field_raises(self):
        spec = ExperimentSpec(rich_scenario())
        data = spec.to_dict()
        data["typo_field"] = 1
        with pytest.raises(SimulationError):
            ExperimentSpec.from_dict(data)

    def test_spec_hash_stable_and_seed_sensitive(self):
        spec = ExperimentSpec(rich_scenario())
        assert spec.spec_hash == ExperimentSpec.from_json(spec.to_json()).spec_hash
        assert spec.spec_hash != spec.with_seed(99).spec_hash

    def test_spec_hash_differs_across_kinds(self):
        scenario = rich_scenario()
        a = ExperimentSpec(scenario, kind="whitefi")
        b = ExperimentSpec(scenario, kind="opt")
        assert a.spec_hash != b.spec_hash


def test_custom_traffic_rejected_in_protocol_runs():
    scenario = ScenarioSpec(
        free_indices=(2, 3, 4),
        mics=(MicSpec(3, sessions=((1e6, 2e6),)),),
        traffic=TrafficSpec(uplink=False),
    )
    with pytest.raises(SimulationError):
        ExperimentSpec(scenario, kind="protocol")
