"""Tests for the ``telemetry`` knob on the experiment spec layer.

The knob is owned by the citywide, roaming, querystorm, and replay
kinds.  ``"on"`` attaches a sim-clock :class:`MetricsRegistry` to the
run and surfaces its snapshot under the ``"telemetry"`` metrics key;
``"off"`` and the default ``None`` leave every result byte-identical
to a pre-telemetry run.
"""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    ScenarioSpec,
    run_experiment,
)

FREE = tuple(range(4, 18))


def storm_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=3e6, seed=13
        ),
        kind="querystorm",
        citywide_aps=8,
        roaming_clients=6,
        citywide_extent_km=3.0,
        citywide_mic_events=2,
        storm_shards=4,
        storm_offered_qps=80.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def roaming_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        scenario=ScenarioSpec(
            free_indices=FREE, duration_us=3e6, seed=13
        ),
        kind="roaming",
        citywide_aps=8,
        roaming_clients=6,
        citywide_extent_km=3.0,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestValidation:
    def test_modes_accepted(self):
        for mode in (None, "off", "on"):
            assert storm_spec(telemetry=mode).telemetry == mode

    def test_bogus_mode_rejected(self):
        with pytest.raises(SimulationError, match="telemetry"):
            storm_spec(telemetry="bogus")

    def test_foreign_on_whitefi_kind(self):
        with pytest.raises(SimulationError, match="telemetry"):
            ExperimentSpec(
                ScenarioSpec(free_indices=FREE),
                kind="whitefi",
                telemetry="on",
            )

    def test_knob_changes_spec_hash(self):
        assert (
            storm_spec(telemetry="on").spec_hash
            != storm_spec().spec_hash
        )


class TestExecution:
    @pytest.mark.parametrize("spec_fn", [storm_spec, roaming_spec])
    def test_on_surfaces_snapshot(self, spec_fn):
        result = run_experiment(spec_fn(telemetry="on"))
        metrics = dict(result.metrics)
        assert "telemetry" in metrics
        snapshot = dict(metrics["telemetry"])
        assert dict(snapshot["counters"])  # non-empty

    def test_off_and_default_match_exactly(self):
        r_none = run_experiment(storm_spec())
        r_off = run_experiment(storm_spec(telemetry="off"))
        assert "telemetry" not in dict(r_none.metrics)
        assert dict(r_off.metrics) == dict(r_none.metrics)

    def test_result_roundtrips_with_snapshot(self):
        result = run_experiment(storm_spec(telemetry="on"))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert "telemetry" in dict(restored.metrics)
