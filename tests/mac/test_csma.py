"""Tests for DCF parameters and backoff state."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.errors import SimulationError
from repro.mac.csma import BackoffState, dcf_for_width


class TestDcfParameters:
    def test_slot_scales_with_width(self):
        assert dcf_for_width(20.0).slot_us == 9.0
        assert dcf_for_width(10.0).slot_us == 18.0
        assert dcf_for_width(5.0).slot_us == 36.0

    def test_difs_from_timing(self):
        params = dcf_for_width(20.0)
        assert params.difs_us == 28.0

    def test_ack_timeout_covers_sifs_plus_ack(self):
        params = dcf_for_width(20.0)
        assert params.ack_timeout_us() > params.sifs_us + 44.0


class TestBackoffState:
    def test_initial_draw_within_cw_min(self):
        for seed in range(20):
            state = BackoffState(dcf_for_width(20.0), random.Random(seed))
            assert 0 <= state.slots_remaining <= constants.CW_MIN

    def test_failure_doubles_window(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(1))
        assert state.cw == constants.CW_MIN
        state.on_failure()
        assert state.cw == 2 * constants.CW_MIN + 1
        state.on_failure()
        assert state.cw == 4 * constants.CW_MIN + 3

    def test_window_capped_at_cw_max(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(1))
        for _ in range(20):
            state.on_failure()
        assert state.cw == constants.CW_MAX

    def test_retry_limit(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(1))
        results = [state.on_failure() for _ in range(constants.MAX_RETRIES + 1)]
        assert all(results[: constants.MAX_RETRIES])
        assert results[constants.MAX_RETRIES] is False

    def test_success_resets(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(1))
        state.on_failure()
        state.on_failure()
        state.on_success()
        assert state.cw == constants.CW_MIN
        assert state.retries == 0

    def test_consume_slot(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(3))
        state.slots_remaining = 2
        state.consume_slot()
        assert state.slots_remaining == 1
        assert not state.ready
        state.consume_slot()
        assert state.ready

    def test_consume_below_zero_raises(self):
        state = BackoffState(dcf_for_width(20.0), random.Random(3))
        state.slots_remaining = 0
        with pytest.raises(SimulationError):
            state.consume_slot()


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_draw_always_in_window(seed):
    """Every backoff draw falls in [0, cw]."""
    state = BackoffState(dcf_for_width(10.0), random.Random(seed))
    for _ in range(10):
        drawn = state.draw()
        assert 0 <= drawn <= state.cw
        state.on_failure()
