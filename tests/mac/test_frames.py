"""Tests for MAC frame taxonomy."""

import pytest

from repro import constants
from repro.errors import ProtocolError
from repro.mac.frames import (
    Frame,
    FrameType,
    beacon_frame,
    channel_switch_frame,
    data_frame,
    report_frame,
)
from repro.spectrum.channels import WhiteFiChannel


class TestFrame:
    def test_default_sizes_applied(self):
        assert Frame(FrameType.ACK, "a").size_bytes == constants.ACK_FRAME_BYTES
        assert (
            Frame(FrameType.BEACON, "a").size_bytes
            == constants.BEACON_FRAME_BYTES
        )

    def test_unique_frame_ids(self):
        ids = {Frame(FrameType.ACK, "a").frame_id for _ in range(100)}
        assert len(ids) == 100

    def test_too_small_frame_raises(self):
        with pytest.raises(ProtocolError):
            Frame(FrameType.DATA, "a", "b", size_bytes=4)

    def test_broadcast_has_no_ack(self):
        frame = Frame(FrameType.DATA, "a", "*")
        assert frame.is_broadcast
        assert not frame.expects_ack

    def test_unicast_data_expects_ack(self):
        assert Frame(FrameType.DATA, "a", "b").expects_ack

    def test_beacon_never_expects_ack(self):
        assert not Frame(FrameType.BEACON, "ap").expects_ack

    def test_chirp_never_expects_ack(self):
        assert not Frame(FrameType.CHIRP, "c", "*").expects_ack


class TestBuilders:
    def test_data_frame_adds_header(self):
        frame = data_frame("a", "b", 1000)
        assert frame.size_bytes == 1000 + constants.DATA_HEADER_BYTES

    def test_data_frame_negative_payload_raises(self):
        with pytest.raises(ProtocolError):
            data_frame("a", "b", -1)

    def test_beacon_carries_backup_channel(self):
        backup = WhiteFiChannel(3, 5.0)
        frame = beacon_frame("ap", backup)
        assert frame.payload["backup_channel"] == backup
        assert frame.is_broadcast

    def test_report_frame_unicast_to_ap(self):
        frame = report_frame("client0", "ap", {"x": 1})
        assert frame.destination == "ap"
        assert frame.expects_ack

    def test_channel_switch_broadcast(self):
        channel = WhiteFiChannel(7, 20.0)
        frame = channel_switch_frame("ap", channel)
        assert frame.is_broadcast
        assert frame.payload["new_channel"] == channel
