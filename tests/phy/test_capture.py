"""Tests for the scanner capture/visibility model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError
from repro.phy.capture import (
    CaptureRequest,
    capture_overlaps_channel,
    center_uncertainty_indices,
    visible_center_indices,
)
from repro.spectrum.channels import WhiteFiChannel


class TestCaptureRequest:
    def test_invalid_duration_raises(self):
        with pytest.raises(SignalError):
            CaptureRequest(5, 0.0)

    def test_center_frequency(self):
        request = CaptureRequest(0, 1000.0)
        assert request.center_frequency_mhz() == pytest.approx(515.0)


class TestVisibility:
    def test_5mhz_visible_from_one_center(self):
        channel = WhiteFiChannel(10, 5.0)
        visible = [
            s for s in range(30) if capture_overlaps_channel(s, channel)
        ]
        assert visible == [10]

    def test_10mhz_visible_from_three_centers(self):
        channel = WhiteFiChannel(10, 10.0)
        visible = [
            s for s in range(30) if capture_overlaps_channel(s, channel)
        ]
        assert visible == [9, 10, 11]

    def test_20mhz_visible_from_five_centers(self):
        # This is the property J-SIFT exploits: skip 5 channels at a time
        # and never miss a 20 MHz transmitter.
        channel = WhiteFiChannel(10, 20.0)
        visible = [
            s for s in range(30) if capture_overlaps_channel(s, channel)
        ]
        assert visible == [8, 9, 10, 11, 12]

    def test_visible_center_indices_helper(self):
        assert visible_center_indices(WhiteFiChannel(10, 20.0)) == (
            8,
            9,
            10,
            11,
            12,
        )

    def test_visible_center_indices_clipped_at_band_edge(self):
        assert visible_center_indices(WhiteFiChannel(2, 20.0)) == (0, 1, 2, 3, 4)


class TestCenterUncertainty:
    def test_uncertainty_is_w_over_2(self):
        # Section 4.2.1: the output of SIFT is (F +/- E, W) with
        # E = +/- W/2 — i.e. span//2 UHF channels either side.
        assert center_uncertainty_indices(10, 20.0) == (8, 9, 10, 11, 12)
        assert center_uncertainty_indices(10, 10.0) == (9, 10, 11)
        assert center_uncertainty_indices(10, 5.0) == (10,)

    def test_uncertainty_clipped_to_valid_positions(self):
        # Near the band edge, candidate centers whose span would not fit
        # are excluded.
        assert center_uncertainty_indices(1, 20.0) == (2, 3)
        assert center_uncertainty_indices(28, 20.0) == (26, 27)


@given(
    center=st.integers(min_value=2, max_value=27),
    width=st.sampled_from([5.0, 10.0, 20.0]),
)
def test_property_visibility_matches_span(center, width):
    """A transmitter is visible exactly from its spanned UHF channels."""
    channel = WhiteFiChannel(center, width)
    for scan in range(30):
        expected = scan in channel.spanned_indices
        assert capture_overlaps_channel(scan, channel) == expected


@given(
    scan=st.integers(min_value=0, max_value=29),
    width=st.sampled_from([5.0, 10.0, 20.0]),
)
def test_property_detected_transmitter_in_uncertainty_range(scan, width):
    """Any transmitter visible from a scan lies in the uncertainty set."""
    for center in center_uncertainty_indices(scan, width):
        channel = WhiteFiChannel(center, width)
        assert capture_overlaps_channel(scan, channel)
