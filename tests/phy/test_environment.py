"""Tests for the RF environment (transmitter schedules -> captured IQ)."""

import numpy as np
import pytest

from repro import constants
from repro.errors import SignalError
from repro.phy.environment import (
    BeaconingAp,
    RfEnvironment,
    ScheduledFrame,
    StaticSchedule,
)
from repro.phy.timing import timing_for_width
from repro.phy.waveform import BurstSpec
from repro.spectrum.channels import WhiteFiChannel


class TestBeaconingAp:
    def test_beacons_every_interval(self):
        ap = BeaconingAp(WhiteFiChannel(10, 20.0), phase_us=0.0)
        frames = list(ap.frames_in(0.0, 3 * constants.BEACON_INTERVAL_US))
        beacons = [f for f in frames if f.burst.label == "beacon"]
        cts = [f for f in frames if f.burst.label == "cts"]
        assert len(beacons) == 3
        assert len(cts) == 3

    def test_beacon_cts_sifs_gap(self):
        ap = BeaconingAp(WhiteFiChannel(10, 10.0), phase_us=0.0)
        frames = list(ap.frames_in(0.0, constants.BEACON_INTERVAL_US))
        beacon = next(f for f in frames if f.burst.label == "beacon")
        cts = next(f for f in frames if f.burst.label == "cts")
        timing = timing_for_width(10.0)
        assert cts.burst.start_us - beacon.burst.end_us == pytest.approx(
            timing.sifs_us
        )

    def test_phase_offset_respected(self):
        ap = BeaconingAp(WhiteFiChannel(5, 5.0), phase_us=50_000.0)
        frames = list(ap.frames_in(0.0, 60_000.0))
        assert frames[0].burst.start_us == pytest.approx(50_000.0)

    def test_window_before_first_beacon_is_empty(self):
        ap = BeaconingAp(WhiteFiChannel(5, 5.0), phase_us=50_000.0)
        assert list(ap.frames_in(0.0, 10_000.0)) == []

    def test_data_stream_optional(self):
        ap = BeaconingAp(
            WhiteFiChannel(10, 20.0),
            phase_us=0.0,
            data_payload_bytes=1000,
            data_gap_us=2000.0,
        )
        frames = list(ap.frames_in(0.0, 50_000.0))
        assert any(f.burst.label == "data" for f in frames)
        assert any(f.burst.label == "ack" for f in frames)


class TestStaticSchedule:
    def test_window_filtering(self):
        sched = StaticSchedule()
        sched.add(WhiteFiChannel(3, 5.0), BurstSpec(100.0, 50.0))
        sched.add(WhiteFiChannel(3, 5.0), BurstSpec(500.0, 50.0))
        assert len(list(sched.frames_in(0.0, 200.0))) == 1
        assert len(list(sched.frames_in(0.0, 600.0))) == 2
        assert list(sched.frames_in(200.0, 400.0)) == []


class TestRfEnvironment:
    def test_capture_sees_overlapping_transmitter(self):
        env = RfEnvironment(seed=1)
        env.add_transmitter(BeaconingAp(WhiteFiChannel(10, 20.0), phase_us=0.0))
        trace = env.capture(8, 0.0, 10_000.0)  # scan lowest spanned channel
        assert trace.amplitude.max() > 300.0

    def test_capture_blind_to_distant_transmitter(self):
        env = RfEnvironment(seed=1)
        env.add_transmitter(BeaconingAp(WhiteFiChannel(10, 20.0), phase_us=0.0))
        trace = env.capture(20, 0.0, 10_000.0)
        assert trace.amplitude.max() < 150.0  # noise only

    def test_capture_rebases_burst_times(self):
        env = RfEnvironment(seed=1)
        sched = StaticSchedule()
        sched.add(
            WhiteFiChannel(3, 5.0), BurstSpec(1_000_000.0, 500.0, 900.0)
        )
        env.add_transmitter(sched)
        bursts = env.visible_bursts(3, 999_900.0, 1_000.0)
        assert len(bursts) == 1
        assert bursts[0].start_us == pytest.approx(100.0)

    def test_invalid_scan_center_raises(self):
        env = RfEnvironment()
        with pytest.raises(SignalError):
            env.capture(30, 0.0, 100.0)

    def test_remove_transmitter(self):
        env = RfEnvironment(seed=1)
        ap = BeaconingAp(WhiteFiChannel(10, 5.0), phase_us=0.0)
        env.add_transmitter(ap)
        env.remove_transmitter(ap)
        assert env.visible_bursts(10, 0.0, 1_000_000.0) == []

    def test_deterministic_noise_for_seed(self):
        a = RfEnvironment(seed=7).capture(5, 0.0, 1_000.0)
        b = RfEnvironment(seed=7).capture(5, 0.0, 1_000.0)
        assert np.array_equal(a.samples, b.samples)
