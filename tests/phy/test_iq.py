"""Tests for IQ trace containers."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.phy.iq import IqTrace, samples_for_duration


class TestIqTrace:
    def test_amplitude_is_magnitude(self):
        trace = IqTrace(np.array([3 + 4j, 0 + 0j]))
        assert trace.amplitude[0] == pytest.approx(5.0)
        assert trace.amplitude[1] == 0.0

    def test_duration(self):
        trace = IqTrace(np.zeros(1000, dtype=complex), sample_period_us=1.024)
        assert trace.duration_us == pytest.approx(1024.0)

    def test_blocks_usrp_sized(self):
        trace = IqTrace(np.zeros(5000, dtype=complex))
        sizes = [len(b) for b in trace.blocks(2048)]
        assert sizes == [2048, 2048, 904]

    def test_blocks_invalid_size_raises(self):
        trace = IqTrace(np.zeros(10, dtype=complex))
        with pytest.raises(SignalError):
            list(trace.blocks(0))

    def test_two_dimensional_raises(self):
        with pytest.raises(SignalError):
            IqTrace(np.zeros((2, 2), dtype=complex))

    def test_bad_sample_period_raises(self):
        with pytest.raises(SignalError):
            IqTrace(np.zeros(4, dtype=complex), sample_period_us=0.0)

    def test_time_of_sample(self):
        trace = IqTrace(np.zeros(10, dtype=complex), 2.0, start_us=100.0)
        assert trace.time_of_sample(3) == 106.0

    def test_sample_at_time_clamps(self):
        trace = IqTrace(np.zeros(10, dtype=complex), 1.0, start_us=0.0)
        assert trace.sample_at_time(-5.0) == 0
        assert trace.sample_at_time(100.0) == 9
        assert trace.sample_at_time(4.2) == 4

    def test_concatenate(self):
        a = IqTrace(np.ones(3, dtype=complex), 1.0, 0.0)
        b = IqTrace(np.zeros(2, dtype=complex), 1.0, 3.0)
        joined = a.concatenate(b)
        assert len(joined) == 5
        assert joined.start_us == 0.0

    def test_concatenate_rate_mismatch_raises(self):
        a = IqTrace(np.ones(3, dtype=complex), 1.0)
        b = IqTrace(np.ones(3, dtype=complex), 2.0)
        with pytest.raises(SignalError):
            a.concatenate(b)


class TestSamplesForDuration:
    def test_round_trip(self):
        assert samples_for_duration(1024.0, 1.024) == 1000

    def test_zero_duration(self):
        assert samples_for_duration(0.0) == 0

    def test_negative_raises(self):
        with pytest.raises(SignalError):
            samples_for_duration(-1.0)
