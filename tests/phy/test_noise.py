"""Tests for noise, attenuation, and the decode-probability model."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.phy.noise import (
    attenuate_db,
    awgn_amplitude,
    decode_success_probability,
    snr_db,
)


class TestAttenuation:
    def test_20db_is_factor_10(self):
        assert attenuate_db(1000.0, 20.0) == pytest.approx(100.0)

    def test_zero_db_identity(self):
        assert attenuate_db(5.0, 0.0) == 5.0

    def test_negative_raises(self):
        with pytest.raises(SignalError):
            attenuate_db(1.0, -3.0)

    def test_6db_halves_amplitude(self):
        assert attenuate_db(100.0, 6.0) == pytest.approx(50.1, rel=0.01)


class TestAwgn:
    def test_rms_matches_request(self, rng):
        noise = awgn_amplitude(200_000, rms=20.0, rng=rng)
        measured = np.sqrt((np.abs(noise) ** 2).mean())
        assert measured == pytest.approx(20.0, rel=0.02)

    def test_zero_samples(self, rng):
        assert len(awgn_amplitude(0, rng=rng)) == 0

    def test_negative_samples_raise(self):
        with pytest.raises(SignalError):
            awgn_amplitude(-1)

    def test_negative_rms_raises(self):
        with pytest.raises(SignalError):
            awgn_amplitude(10, rms=-1.0)


class TestSnr:
    def test_snr_db(self):
        assert snr_db(1000.0, 10.0) == pytest.approx(40.0)

    def test_invalid_raises(self):
        with pytest.raises(SignalError):
            snr_db(0.0, 1.0)
        with pytest.raises(SignalError):
            snr_db(1.0, 0.0)


class TestDecodeModel:
    def test_high_snr_always_decodes(self):
        assert decode_success_probability(40.0, 1000) > 0.999

    def test_low_snr_never_decodes(self):
        assert decode_success_probability(-10.0, 1000) < 0.01

    def test_monotone_in_snr(self):
        probs = [decode_success_probability(s, 1000) for s in range(-5, 30)]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_longer_frames_fail_earlier(self):
        snr = 5.0
        assert decode_success_probability(snr, 1500) < decode_success_probability(
            snr, 100
        )

    def test_smooth_falloff(self):
        # The sniffer curve of Figure 7 falls smoothly: between 90% and
        # 10% success there should be a multi-dB transition region.
        snrs = np.linspace(-5, 20, 200)
        probs = [decode_success_probability(s, 1000) for s in snrs]
        above_90 = max(s for s, p in zip(snrs, probs) if p < 0.9)
        below_10 = min(s for s, p in zip(snrs, probs) if p > 0.1)
        assert above_90 - below_10 > 2.0

    def test_invalid_frame_raises(self):
        with pytest.raises(SignalError):
            decode_success_probability(10.0, 0)
