"""Regression: bare (no-rng) signal-path calls are deterministic.

The determinism contract forbids OS-entropy fallbacks anywhere in
``src/repro`` (detlint DET003).  The convenience defaults in phy/ and
radio/ instead construct a Generator from
``constants.FALLBACK_RNG_SEED`` — so two bare calls of the same helper
produce *identical* output, pinned here so the fallbacks can never
quietly regress to ``np.random.default_rng()``.
"""

import numpy as np

from repro import constants
from repro.phy.noise import awgn_amplitude
from repro.phy.waveform import BurstSpec, synthesize_bursts, traffic_bursts


class TestBareCallsAreDeterministic:
    def test_awgn_amplitude_identical_across_bare_calls(self):
        a = awgn_amplitude(512, 20.0)
        b = awgn_amplitude(512, 20.0)
        np.testing.assert_array_equal(a, b)

    def test_awgn_fallback_is_the_documented_seed(self):
        expected = awgn_amplitude(
            64, 20.0, rng=np.random.default_rng(constants.FALLBACK_RNG_SEED)
        )
        np.testing.assert_array_equal(awgn_amplitude(64, 20.0), expected)

    def test_synthesize_bursts_identical_across_bare_calls(self):
        bursts = [BurstSpec(start_us=50.0, duration_us=400.0)]
        a = synthesize_bursts(bursts, 1_000.0)
        b = synthesize_bursts(bursts, 1_000.0)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_traffic_bursts_jitter_identical_across_bare_calls(self):
        kwargs = dict(jitter_us=40.0, start_us=0.0)
        a = traffic_bursts(20.0, 1000, 16, 200.0, **kwargs)
        b = traffic_bursts(20.0, 1000, 16, 200.0, **kwargs)
        assert a == b
        # The jitter actually exercised the rng (gaps are not uniform).
        gaps = {
            round(second.start_us - first.end_us, 6)
            for first, second in zip(a[1::2], a[2::2])
        }
        assert len(gaps) > 1

    def test_explicit_rng_still_wins_over_fallback(self):
        a = awgn_amplitude(64, 20.0, rng=np.random.default_rng(1))
        b = awgn_amplitude(64, 20.0)
        assert not np.array_equal(a, b)
