"""Tests for width-scaled PHY timing (the scale laws SIFT relies on)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SignalError
from repro.phy.timing import all_timings, frame_airtime_us, timing_for_width

WIDTHS = (5.0, 10.0, 20.0)


class TestBaseValues:
    def test_20mhz_is_80211a(self):
        t = timing_for_width(20.0)
        assert t.symbol_us == 4.0
        assert t.sifs_us == 10.0
        assert t.slot_us == 9.0
        assert t.difs_us == 28.0
        assert t.data_rate_mbps == 6.0

    def test_paper_min_sifs_is_20mhz_at_10us(self):
        # Section 4.2.1: "the lowest SIFS value in our system is for a
        # 20 MHz transmission, which is 10 us".
        assert min(t.sifs_us for t in all_timings()) == 10.0
        assert timing_for_width(20.0).sifs_us == 10.0

    def test_ack_duration_at_20mhz(self):
        # 14-byte ACK at 6 Mbps: 20 us preamble + 6 symbols = 44 us.
        assert timing_for_width(20.0).ack_duration_us == 44.0

    def test_unsupported_width_raises(self):
        with pytest.raises(SignalError):
            timing_for_width(7.5)

    def test_negative_frame_raises(self):
        with pytest.raises(SignalError):
            timing_for_width(20.0).frame_duration_us(-1)


class TestScaleLaws:
    def test_halving_width_doubles_sifs(self):
        assert timing_for_width(10.0).sifs_us == 20.0
        assert timing_for_width(5.0).sifs_us == 40.0

    def test_halving_width_doubles_symbol(self):
        assert timing_for_width(10.0).symbol_us == 8.0
        assert timing_for_width(5.0).symbol_us == 16.0

    def test_halving_width_halves_rate(self):
        # Figure 6 caption logic: "halving the channel width also halves
        # the effective transmission rate".
        assert timing_for_width(10.0).data_rate_mbps == 3.0
        assert timing_for_width(5.0).data_rate_mbps == 1.5

    @pytest.mark.parametrize("frame_bytes", [14, 132, 1000, 1500])
    def test_duration_doubles_when_width_halves(self, frame_bytes):
        d20 = timing_for_width(20.0).frame_duration_us(frame_bytes)
        d10 = timing_for_width(10.0).frame_duration_us(frame_bytes)
        d5 = timing_for_width(5.0).frame_duration_us(frame_bytes)
        assert d10 == pytest.approx(2 * d20)
        assert d5 == pytest.approx(4 * d20)

    def test_ack_ladder_is_unambiguous(self):
        # SIFT separates widths by ACK duration: 44/88/176 us.
        acks = [timing_for_width(w).ack_duration_us for w in WIDTHS]
        assert acks == [176.0, 88.0, 44.0]
        gaps = [abs(a - b) for a, b in zip(acks, acks[1:])]
        assert min(gaps) >= 40.0

    def test_sifs_ladder_is_unambiguous(self):
        sifs = [timing_for_width(w).sifs_us for w in WIDTHS]
        assert sifs == [40.0, 20.0, 10.0]

    def test_ack_smaller_than_any_data_at_any_width(self):
        # Section 4.2.1: "the duration of an acknowledgement packet at
        # the narrowest width of 5 MHz is still much smaller than any
        # data packet sent at 20 MHz" — for realistic data sizes.
        ack_5mhz = timing_for_width(5.0).ack_duration_us
        data_20mhz = timing_for_width(20.0).data_duration_us(132)
        assert ack_5mhz < data_20mhz


class TestExchanges:
    def test_exchange_includes_sifs_and_ack(self):
        t = timing_for_width(20.0)
        assert t.exchange_duration_us(1000) == pytest.approx(
            t.data_duration_us(1000) + 10.0 + 44.0
        )

    def test_figure5_magnitudes(self):
        # Figure 5: a 132-byte Data-ACK at 6 Mbps spans a few hundred us
        # at 20 MHz and about four times that at 5 MHz.
        e20 = timing_for_width(20.0).exchange_duration_us(132 - 28)
        e5 = timing_for_width(5.0).exchange_duration_us(132 - 28)
        assert 200 <= e20 <= 400
        assert e5 == pytest.approx(4 * e20)

    def test_frame_airtime_wrapper(self):
        assert frame_airtime_us(14, 20.0) == 44.0


@given(
    frame_bytes=st.integers(min_value=0, max_value=2346),
    width=st.sampled_from(list(WIDTHS)),
)
def test_property_duration_positive_and_monotone(frame_bytes, width):
    """Durations are positive and grow with frame size."""
    t = timing_for_width(width)
    d = t.frame_duration_us(frame_bytes)
    assert d >= t.preamble_us
    assert t.frame_duration_us(frame_bytes + 100) >= d


@given(width=st.sampled_from(list(WIDTHS)))
def test_property_difs_exceeds_sifs(width):
    """DIFS > SIFS at every width (frame-priority invariant)."""
    t = timing_for_width(width)
    assert t.difs_us > t.sifs_us
    assert t.difs_us == pytest.approx(t.sifs_us + 2 * t.slot_us)
