"""Tests for time-domain burst synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.phy.timing import timing_for_width
from repro.phy.waveform import (
    BurstSpec,
    beacon_cts_bursts,
    data_ack_bursts,
    ramp_for_width,
    synthesize_bursts,
    traffic_bursts,
)


class TestBurstSpec:
    def test_end_time(self):
        burst = BurstSpec(100.0, 50.0)
        assert burst.end_us == 150.0

    def test_invalid_duration_raises(self):
        with pytest.raises(SignalError):
            BurstSpec(0.0, 0.0)

    def test_invalid_ramp_raises(self):
        with pytest.raises(SignalError):
            BurstSpec(0.0, 10.0, ramp_fraction=1.5)

    def test_negative_amplitude_raises(self):
        with pytest.raises(SignalError):
            BurstSpec(0.0, 10.0, amplitude_rms=-1.0)


class TestRampArtifact:
    def test_only_5mhz_has_ramp(self):
        assert ramp_for_width(5.0)[0] > 0.0
        assert ramp_for_width(10.0) == (0.0, 1.0)
        assert ramp_for_width(20.0) == (0.0, 1.0)

    def test_ramp_reduces_leading_amplitude(self, rng):
        burst = BurstSpec(
            0.0, 2000.0, amplitude_rms=900.0, ramp_fraction=0.2, ramp_level=0.3
        )
        trace = synthesize_bursts([burst], 2000.0, noise_rms=0.0, rng=rng)
        amp = trace.amplitude
        n = len(amp)
        lead = amp[: int(0.15 * n)].mean()
        body = amp[int(0.3 * n) :].mean()
        assert lead < 0.5 * body


class TestSynthesis:
    def test_noise_floor_only(self, rng):
        trace = synthesize_bursts([], 1000.0, noise_rms=20.0, rng=rng)
        rms = np.sqrt((trace.amplitude**2).mean())
        assert rms == pytest.approx(20.0, rel=0.1)

    def test_burst_elevates_amplitude(self, rng):
        burst = BurstSpec(200.0, 300.0, amplitude_rms=900.0)
        trace = synthesize_bursts([burst], 1000.0, rng=rng)
        inside = trace.amplitude[250:450].mean()
        outside = trace.amplitude[600:].mean()
        assert inside > 10 * outside

    def test_bursts_outside_window_ignored(self, rng):
        burst = BurstSpec(5000.0, 100.0, amplitude_rms=900.0)
        trace = synthesize_bursts([burst], 1000.0, noise_rms=1.0, rng=rng)
        assert trace.amplitude.max() < 10.0

    def test_burst_clipped_at_window_edge(self, rng):
        burst = BurstSpec(900.0, 500.0, amplitude_rms=900.0)
        trace = synthesize_bursts([burst], 1000.0, rng=rng)
        # Energy present near the end but the trace is the right length.
        assert len(trace) == int(round(1000.0 / trace.sample_period_us))
        assert trace.amplitude[-50:].mean() > 100.0

    def test_invalid_duration_raises(self, rng):
        with pytest.raises(SignalError):
            synthesize_bursts([], 0.0, rng=rng)

    def test_overlapping_bursts_superpose(self, rng):
        a = BurstSpec(100.0, 400.0, amplitude_rms=600.0)
        b = BurstSpec(300.0, 400.0, amplitude_rms=600.0)
        trace = synthesize_bursts([a, b], 1000.0, noise_rms=0.0, rng=rng)
        overlap_power = (trace.amplitude[320:380] ** 2).mean()
        single_power = (trace.amplitude[150:250] ** 2).mean()
        # Powers add (complex voltages are independent).
        assert overlap_power == pytest.approx(2 * single_power, rel=0.25)


class TestExchangeBuilders:
    @pytest.mark.parametrize("width", [5.0, 10.0, 20.0])
    def test_data_ack_gap_is_sifs(self, width):
        data, ack = data_ack_bursts(width, 1000, 50.0)
        timing = timing_for_width(width)
        assert ack.start_us - data.end_us == pytest.approx(timing.sifs_us)
        assert ack.duration_us == pytest.approx(timing.ack_duration_us)
        assert data.duration_us == pytest.approx(timing.data_duration_us(1000))

    @pytest.mark.parametrize("width", [5.0, 10.0, 20.0])
    def test_beacon_cts_gap_is_sifs(self, width):
        beacon, cts = beacon_cts_bursts(width, 50.0)
        timing = timing_for_width(width)
        assert cts.start_us - beacon.end_us == pytest.approx(timing.sifs_us)
        assert beacon.duration_us == pytest.approx(timing.beacon_duration_us)

    def test_only_5mhz_data_carries_ramp(self):
        data5, _ = data_ack_bursts(5.0, 1000, 0.0)
        data20, _ = data_ack_bursts(20.0, 1000, 0.0)
        assert data5.ramp_fraction > 0
        assert data20.ramp_fraction == 0


class TestTrafficBursts:
    def test_packet_count(self):
        bursts = traffic_bursts(20.0, 1000, 7, 1000.0)
        assert len(bursts) == 14  # data + ack per packet

    def test_gap_between_exchanges(self):
        bursts = traffic_bursts(20.0, 1000, 2, 2500.0)
        first_ack, second_data = bursts[1], bursts[2]
        assert second_data.start_us - first_ack.end_us == pytest.approx(2500.0)

    def test_zero_packets(self):
        assert traffic_bursts(20.0, 1000, 0, 100.0) == []

    def test_negative_count_raises(self):
        with pytest.raises(SignalError):
            traffic_bursts(20.0, 1000, -1, 100.0)

    def test_negative_gap_raises(self):
        with pytest.raises(SignalError):
            traffic_bursts(20.0, 1000, 1, -5.0)


@settings(max_examples=25, deadline=None)
@given(
    width=st.sampled_from([5.0, 10.0, 20.0]),
    n=st.integers(min_value=1, max_value=5),
    gap=st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
)
def test_property_traffic_bursts_ordered_and_disjoint(width, n, gap):
    """Generated traffic is time-ordered with non-overlapping bursts."""
    bursts = traffic_bursts(width, 500, n, gap)
    for a, b in zip(bursts, bursts[1:]):
        assert b.start_us >= a.end_us
