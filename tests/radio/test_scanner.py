"""Tests for the SIFT scanner radio."""

import pytest

from repro import constants
from repro.errors import RadioError
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio.scanner import Scanner
from repro.spectrum.channels import WhiteFiChannel


@pytest.fixture
def env_with_ap():
    env = RfEnvironment(seed=2)
    env.add_transmitter(
        BeaconingAp(
            WhiteFiChannel(10, 20.0),
            phase_us=7_000.0,
            data_payload_bytes=1000,
            data_gap_us=3_000.0,
        )
    )
    return env


class TestScanner:
    def test_sift_scan_detects_overlapping_ap(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        result = scanner.sift_scan(8, 0.0)
        assert result.transmitter_detected
        assert 20.0 in result.widths_detected

    def test_sift_scan_misses_distant_ap(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        result = scanner.sift_scan(20, 0.0)
        assert not result.transmitter_detected

    def test_tune_cost_only_on_retune(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        assert scanner.tune_cost_us(5) == scanner.retune_us
        scanner.capture(5, 0.0, 1000.0)
        assert scanner.tune_cost_us(5) == 0.0
        assert scanner.tune_cost_us(6) == scanner.retune_us

    def test_retune_counter(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        scanner.capture(5, 0.0, 100.0)
        scanner.capture(5, 200.0, 100.0)
        scanner.capture(6, 400.0, 100.0)
        assert scanner.total_retunes == 2

    def test_out_of_band_raises(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        with pytest.raises(RadioError):
            scanner.capture(31, 0.0, 100.0)

    def test_measure_airtime_on_busy_channel(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        airtime = scanner.measure_airtime(10, 0.0, 200_000.0)
        assert airtime > 0.2  # heavy data stream

    def test_measure_airtime_on_idle_channel(self, env_with_ap):
        scanner = Scanner(env_with_ap)
        airtime = scanner.measure_airtime(25, 0.0, 100_000.0)
        assert airtime == pytest.approx(0.0, abs=0.01)
