"""Tests for the main (F, W) transceiver."""

import numpy as np
import pytest

from repro import constants
from repro.errors import RadioError
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.radio.transceiver import Transceiver
from repro.spectrum.channels import WhiteFiChannel

AP_CHANNEL = WhiteFiChannel(10, 20.0)


@pytest.fixture
def env():
    environment = RfEnvironment(seed=4)
    environment.add_transmitter(
        BeaconingAp(
            AP_CHANNEL,
            phase_us=3_000.0,
            data_payload_bytes=1000,
            data_gap_us=5_000.0,
        )
    )
    return environment


def make_transceiver(env, **kwargs):
    return Transceiver(env, rng=np.random.default_rng(9), **kwargs)


class TestTuning:
    def test_tune_costs_pll_switch(self, env):
        radio = make_transceiver(env)
        assert radio.tune(AP_CHANNEL) == constants.PLL_SWITCH_US
        assert radio.tune(AP_CHANNEL) == 0.0
        assert radio.total_switches == 1

    def test_untuned_decode_raises(self, env):
        radio = make_transceiver(env)
        with pytest.raises(RadioError):
            radio.beacon_heard(0.0, 1000.0)


class TestDecoding:
    def test_beacon_heard_when_tuned_exactly(self, env):
        radio = make_transceiver(env)
        radio.tune(AP_CHANNEL)
        assert radio.beacon_heard(0.0, constants.BEACON_DWELL_US)

    def test_width_mismatch_undecodable(self, env):
        # Tuned to the right center but the wrong width: the PLL trick
        # means such frames cannot be decoded (Section 2.2).
        radio = make_transceiver(env)
        radio.tune(WhiteFiChannel(10, 10.0))
        assert not radio.beacon_heard(0.0, constants.BEACON_DWELL_US)

    def test_center_mismatch_undecodable(self, env):
        radio = make_transceiver(env)
        radio.tune(WhiteFiChannel(11, 20.0))
        assert not radio.beacon_heard(0.0, constants.BEACON_DWELL_US)

    def test_sniffer_counts_data_frames(self, env):
        radio = make_transceiver(env)
        radio.tune(AP_CHANNEL)
        count = radio.count_decoded_data(0.0, 100_000.0)
        assert count >= 10  # ~5 ms per exchange+gap over 100 ms

    def test_weak_signal_decodes_rarely(self):
        environment = RfEnvironment(seed=4)
        environment.add_transmitter(
            BeaconingAp(
                AP_CHANNEL,
                amplitude_rms=25.0,  # ~2 dB SNR
                phase_us=3_000.0,
                data_payload_bytes=1000,
                data_gap_us=5_000.0,
            )
        )
        radio = make_transceiver(environment)
        radio.tune(AP_CHANNEL)
        strong_env_count = radio.count_decoded_data(0.0, 300_000.0)
        assert strong_env_count < 10  # most frames fail at ~2 dB


class TestRngFallback:
    def test_bare_constructions_decode_identically(self, env):
        # Regression (determinism contract / detlint DET003): the
        # rng-less convenience constructor must seed from
        # constants.FALLBACK_RNG_SEED, never OS entropy — two bare
        # transceivers observe the same air identically.
        first = Transceiver(env)
        second = Transceiver(env)
        for radio in (first, second):
            radio.tune(AP_CHANNEL)
        window = (0.0, 300_000.0)
        assert first.decoded_frames(*window) == second.decoded_frames(*window)

    def test_fallback_is_the_documented_seed(self, env):
        bare = Transceiver(env)
        pinned = Transceiver(
            env, rng=np.random.default_rng(constants.FALLBACK_RNG_SEED)
        )
        for radio in (bare, pinned):
            radio.tune(AP_CHANNEL)
        assert bare.count_decoded_data(0.0, 300_000.0) == pinned.count_decoded_data(
            0.0, 300_000.0
        )
