"""Tests for the SIFT analyzer (airtime, AP detection, chirp extraction)."""

import numpy as np
import pytest

from repro import constants
from repro.phy.timing import timing_for_width
from repro.phy.waveform import (
    BurstSpec,
    beacon_cts_bursts,
    synthesize_bursts,
    traffic_bursts,
)
from repro.sift.analyzer import SiftAnalyzer


def make_trace(bursts, duration_us, seed=0):
    rng = np.random.default_rng(seed)
    return synthesize_bursts(bursts, duration_us, rng=rng)


class TestAirtimeMeasurement:
    def test_idle_airtime_zero(self):
        analyzer = SiftAnalyzer()
        assert analyzer.airtime(make_trace([], 10_000.0)) == 0.0

    @pytest.mark.parametrize("width", [5.0, 10.0, 20.0])
    def test_airtime_matches_ground_truth(self, width):
        # Figure 6: SIFT's airtime measurement tracks the true occupied
        # time within a couple of percent.
        bursts = traffic_bursts(width, 1000, 10, 3000.0, start_us=500.0)
        duration = bursts[-1].end_us + 1000.0
        truth = sum(b.duration_us for b in bursts) / duration
        measured = SiftAnalyzer().airtime(make_trace(bursts, duration))
        assert measured == pytest.approx(truth, abs=0.03)

    def test_airtime_doubles_when_width_halves(self):
        # Same packet count at half width occupies twice the air.
        out = {}
        for width in (20.0, 10.0):
            bursts = traffic_bursts(width, 1000, 8, 5000.0, start_us=500.0)
            duration = 80_000.0
            out[width] = SiftAnalyzer().airtime(make_trace(bursts, duration))
        assert out[10.0] == pytest.approx(2 * out[20.0], rel=0.1)


class TestTransmitterDetection:
    @pytest.mark.parametrize("width", [5.0, 10.0, 20.0])
    def test_detect_transmitter_width(self, width):
        bursts = traffic_bursts(width, 1000, 5, 2000.0, start_us=500.0)
        trace = make_trace(bursts, bursts[-1].end_us + 500.0)
        assert SiftAnalyzer().detect_transmitter(trace) == width

    def test_no_transmitter_on_idle_channel(self):
        assert SiftAnalyzer().detect_transmitter(make_trace([], 10_000.0)) is None

    def test_dominant_transmitter_wins(self):
        heavy = traffic_bursts(20.0, 1000, 6, 1500.0, start_us=500.0)
        light_start = heavy[-1].end_us + 2000.0
        light = traffic_bursts(5.0, 1000, 1, 1000.0, start_us=light_start)
        trace = make_trace(heavy + light, light[-1].end_us + 500.0)
        assert SiftAnalyzer().detect_transmitter(trace) == 20.0


class TestScanResult:
    def test_beacon_exchanges_separated_from_data(self):
        beacon, cts = beacon_cts_bursts(20.0, 500.0)
        data = traffic_bursts(20.0, 1000, 2, 2000.0, start_us=cts.end_us + 1500.0)
        trace = make_trace([beacon, cts] + data, data[-1].end_us + 500.0)
        result = SiftAnalyzer().scan(trace)
        assert len(result.beacon_exchanges) == 1
        assert len(result.data_exchanges) == 2
        assert result.transmitter_detected

    def test_unpaired_bursts_are_chirp_candidates(self):
        lone = BurstSpec(1000.0, 600.0, 900.0, label="chirp")
        trace = make_trace([lone], 3000.0)
        result = SiftAnalyzer().scan(trace)
        assert len(result.unpaired_bursts()) == 1
        assert result.exchanges == ()

    def test_ap_count_single_ap(self):
        channel_width = 20.0
        bursts = []
        for k in range(3):
            b, c = beacon_cts_bursts(
                channel_width, 500.0 + k * constants.BEACON_INTERVAL_US
            )
            bursts += [b, c]
        trace = make_trace(bursts, 3 * constants.BEACON_INTERVAL_US + 1000.0)
        result = SiftAnalyzer().scan(trace)
        assert result.ap_count_estimate() == 1

    def test_ap_count_two_aps_distinct_phases(self):
        bursts = []
        for phase in (500.0, 41_000.0):
            for k in range(2):
                b, c = beacon_cts_bursts(
                    10.0, phase + k * constants.BEACON_INTERVAL_US
                )
                bursts += [b, c]
        trace = make_trace(
            sorted(bursts, key=lambda b: b.start_us),
            2 * constants.BEACON_INTERVAL_US + 50_000.0,
        )
        result = SiftAnalyzer().scan(trace)
        assert result.ap_count_estimate() == 2
