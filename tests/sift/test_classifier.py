"""Tests for SIFT width classification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.timing import timing_for_width
from repro.phy.waveform import (
    beacon_cts_bursts,
    data_ack_bursts,
    synthesize_bursts,
    traffic_bursts,
)
from repro.sift.classifier import (
    DetectedExchange,
    ExchangeKind,
    classify_exchanges,
    count_matching_packets,
    detected_widths,
    match_width,
)
from repro.sift.detector import detect_bursts, edge_bias_us

WIDTHS = (5.0, 10.0, 20.0)


def scan(bursts, duration_us, seed=0):
    rng = np.random.default_rng(seed)
    trace = synthesize_bursts(bursts, duration_us, rng=rng)
    return classify_exchanges(detect_bursts(trace))


class TestMatchWidth:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_exact_signature_matches(self, width):
        timing = timing_for_width(width)
        bias = edge_bias_us()
        assert (
            match_width(timing.sifs_us - bias, timing.ack_duration_us + bias)
            == width
        )

    def test_garbage_gap_rejected(self):
        assert match_width(500.0, 44.0) is None

    def test_garbage_ack_rejected(self):
        assert match_width(10.0, 500.0) is None

    def test_cross_width_signatures_do_not_alias(self):
        # A 20 MHz SIFS with a 5 MHz ACK duration is not a valid pattern.
        t20, t5 = timing_for_width(20.0), timing_for_width(5.0)
        bias = edge_bias_us()
        assert (
            match_width(t20.sifs_us - bias, t5.ack_duration_us + bias) is None
        )


class TestClassifyExchanges:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_data_ack_recognised(self, width):
        data, ack = data_ack_bursts(width, 1000, 500.0)
        exchanges = scan([data, ack], ack.end_us + 500.0)
        assert len(exchanges) == 1
        assert exchanges[0].kind is ExchangeKind.DATA_ACK
        assert exchanges[0].width_mhz == width

    @pytest.mark.parametrize("width", WIDTHS)
    def test_beacon_cts_recognised(self, width):
        beacon, cts = beacon_cts_bursts(width, 500.0)
        exchanges = scan([beacon, cts], cts.end_us + 500.0)
        assert len(exchanges) == 1
        assert exchanges[0].kind is ExchangeKind.BEACON_CTS
        assert exchanges[0].width_mhz == width

    def test_mixed_widths_in_one_capture(self):
        d1, a1 = data_ack_bursts(20.0, 1000, 500.0)
        d2, a2 = data_ack_bursts(5.0, 1000, a1.end_us + 2000.0)
        exchanges = scan([d1, a1, d2, a2], a2.end_us + 500.0)
        assert detected_widths(exchanges) == {20.0, 5.0}

    def test_lone_burst_not_an_exchange(self):
        data, _ = data_ack_bursts(20.0, 1000, 500.0)
        exchanges = scan([data], data.end_us + 500.0)
        assert exchanges == []

    def test_exchange_consumes_both_bursts(self):
        # Three packets -> three exchanges, no burst reused.
        bursts = traffic_bursts(10.0, 1000, 3, 2000.0, start_us=500.0)
        exchanges = scan(bursts, bursts[-1].end_us + 500.0)
        assert len(exchanges) == 3
        starts = [e.first.start_sample for e in exchanges]
        assert len(set(starts)) == 3

    def test_measured_gap_close_to_sifs(self):
        data, ack = data_ack_bursts(20.0, 1000, 500.0)
        exchanges = scan([data, ack], ack.end_us + 500.0)
        timing = timing_for_width(20.0)
        assert exchanges[0].measured_gap_us == pytest.approx(
            timing.sifs_us - edge_bias_us(), abs=4.0
        )


class TestCountMatchingPackets:
    def test_counts_only_matching_length(self):
        bursts = traffic_bursts(20.0, 1000, 5, 2000.0, start_us=500.0)
        exchanges = scan(bursts, bursts[-1].end_us + 500.0)
        assert count_matching_packets(exchanges, 20.0, 1000) == 5
        assert count_matching_packets(exchanges, 20.0, 200) == 0
        assert count_matching_packets(exchanges, 10.0, 1000) == 0

    def test_never_exceeds_sent(self):
        bursts = traffic_bursts(5.0, 1000, 4, 3000.0, start_us=500.0)
        exchanges = scan(bursts, bursts[-1].end_us + 500.0)
        assert count_matching_packets(exchanges, 5.0, 1000) <= 4


@settings(max_examples=15, deadline=None)
@given(
    width=st.sampled_from(list(WIDTHS)),
    payload=st.integers(min_value=200, max_value=1500),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_width_always_correct(width, payload, seed):
    """SIFT identifies the width correctly for any payload size.

    Table 1's observation: "SIFT always correctly detects the channel
    width of the transmitted packet, even when it mis-estimates the
    packet length."
    """
    data, ack = data_ack_bursts(width, payload, 500.0)
    exchanges = scan([data, ack], ack.end_us + 500.0, seed=seed)
    for e in exchanges:
        assert e.width_mhz == width
