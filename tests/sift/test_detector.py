"""Tests for the SIFT burst detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.errors import SignalError
from repro.phy.iq import IqTrace
from repro.phy.waveform import BurstSpec, synthesize_bursts
from repro.sift.detector import (
    DEFAULT_THRESHOLD,
    adaptive_threshold,
    busy_fraction,
    detect_bursts,
    edge_bias_us,
    estimate_noise_floor,
    moving_average,
)


def make_trace(bursts, duration_us=5000.0, seed=0, noise_rms=20.0):
    rng = np.random.default_rng(seed)
    return synthesize_bursts(bursts, duration_us, noise_rms=noise_rms, rng=rng)


class TestMovingAverage:
    def test_preserves_length(self):
        x = np.arange(100, dtype=float)
        assert len(moving_average(x, 5)) == 100

    def test_window_one_is_identity(self):
        x = np.random.default_rng(0).random(50)
        assert np.allclose(moving_average(x, 1), x)

    def test_smooths_single_dip(self):
        x = np.full(50, 100.0)
        x[25] = 0.0  # mid-packet amplitude dip
        smoothed = moving_average(x, 5)
        assert smoothed[25] == pytest.approx(80.0)

    def test_constant_input_unchanged_at_edges(self):
        x = np.full(20, 7.0)
        assert np.allclose(moving_average(x, 5), 7.0)

    def test_invalid_window_raises(self):
        with pytest.raises(SignalError):
            moving_average(np.ones(10), 0)

    def test_empty_input(self):
        assert len(moving_average(np.array([]), 5)) == 0

    def test_window_below_min_sifs(self):
        # The design constraint: window (5 samples) < min SIFS (10 samples).
        min_sifs_samples = constants.BASE_SIFS_US / constants.SAMPLE_PERIOD_US
        assert constants.SIFT_WINDOW_SAMPLES < min_sifs_samples


class TestDetectBursts:
    def test_detects_single_burst(self):
        trace = make_trace([BurstSpec(1000.0, 500.0, 900.0)])
        bursts = detect_bursts(trace)
        assert len(bursts) == 1
        assert bursts[0].start_us == pytest.approx(1000.0, abs=8.0)
        assert bursts[0].duration_us == pytest.approx(
            500.0 + edge_bias_us(), abs=8.0
        )

    def test_pure_noise_has_no_bursts(self):
        trace = make_trace([], seed=3)
        assert detect_bursts(trace) == []

    def test_separates_bursts_with_sifs_gap(self):
        # Two bursts separated by the minimum SIFS (10 us) must remain
        # distinguishable — this is why the window is 5 samples.
        a = BurstSpec(1000.0, 300.0, 900.0)
        b = BurstSpec(a.end_us + 10.0, 44.0, 900.0)
        bursts = detect_bursts(make_trace([a, b]))
        assert len(bursts) == 2

    def test_merges_bursts_without_gap(self):
        a = BurstSpec(1000.0, 300.0, 900.0)
        b = BurstSpec(1300.0, 300.0, 900.0)
        bursts = detect_bursts(make_trace([a, b]))
        assert len(bursts) == 1

    def test_amplitude_dips_do_not_split_bursts(self):
        # Rayleigh fading makes instantaneous amplitude dip low
        # mid-packet; the moving average must bridge those dips at
        # typical received amplitudes.
        trace = make_trace(
            [BurstSpec(500.0, 2000.0, 900.0)], duration_us=4000.0, seed=11
        )
        bursts = detect_bursts(trace)
        assert len(bursts) == 1

    def test_instantaneous_threshold_would_split(self):
        # Sanity check of the paper's motivation for the moving average:
        # with window=1 (instantaneous values) the same burst fragments.
        trace = make_trace(
            [BurstSpec(500.0, 2000.0, 900.0)], duration_us=4000.0, seed=11
        )
        instantaneous = detect_bursts(trace, window=1, min_burst_samples=1)
        smoothed = detect_bursts(trace)
        assert len(instantaneous) > len(smoothed)

    def test_ordered_and_non_overlapping(self):
        specs = [
            BurstSpec(500.0 + i * 600.0, 200.0, 900.0) for i in range(6)
        ]
        bursts = detect_bursts(make_trace(specs))
        assert len(bursts) == 6
        for a, b in zip(bursts, bursts[1:]):
            assert a.end_sample <= b.start_sample

    def test_invalid_threshold_raises(self):
        trace = make_trace([])
        with pytest.raises(SignalError):
            detect_bursts(trace, threshold=0.0)

    def test_weak_burst_below_threshold_missed(self):
        trace = make_trace([BurstSpec(1000.0, 300.0, 30.0)])
        assert detect_bursts(trace, threshold=DEFAULT_THRESHOLD) == []


class TestBusyFraction:
    def test_idle_is_zero(self):
        assert busy_fraction(make_trace([], seed=5)) == 0.0

    def test_half_busy(self):
        trace = make_trace([BurstSpec(0.0, 2500.0, 900.0)], duration_us=5000.0)
        assert busy_fraction(trace) == pytest.approx(0.5, abs=0.02)


class TestAdaptiveThreshold:
    def test_tracks_noise_floor(self):
        quiet = make_trace([], noise_rms=10.0, seed=2)
        loud = make_trace([], noise_rms=50.0, seed=2)
        assert adaptive_threshold(loud) > adaptive_threshold(quiet)

    def test_noise_floor_estimate_under_traffic(self):
        # The lower percentile stays near the floor despite 40% duty.
        trace = make_trace(
            [BurstSpec(0.0, 2000.0, 900.0)], duration_us=5000.0, seed=4
        )
        floor = estimate_noise_floor(trace)
        assert floor < 50.0

    def test_empty_trace_raises(self):
        with pytest.raises(SignalError):
            estimate_noise_floor(IqTrace(np.array([], dtype=complex)))

    def test_invalid_factor_raises(self):
        with pytest.raises(SignalError):
            adaptive_threshold(make_trace([]), factor=0.0)


@settings(max_examples=20, deadline=None)
@given(
    start=st.floats(min_value=100.0, max_value=2000.0),
    duration=st.floats(min_value=100.0, max_value=1500.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_detected_bursts_in_bounds(start, duration, seed):
    """All detected bursts lie within the capture window."""
    trace = make_trace([BurstSpec(start, duration, 900.0)], 4000.0, seed)
    for burst in detect_bursts(trace):
        assert 0 <= burst.start_sample < burst.end_sample <= len(trace)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_noise_only_never_detects(seed):
    """The fixed threshold rejects pure noise (no false bursts)."""
    trace = make_trace([], duration_us=10_000.0, seed=seed)
    assert detect_bursts(trace) == []
