"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(30.0, fired.append, "c")
        engine.schedule(10.0, fired.append, "a")
        engine.schedule(20.0, fired.append, "b")
        engine.run_until(100.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, fired.append, 1)
        engine.schedule(10.0, fired.append, 2)
        engine.schedule(10.0, fired.append, 3)
        engine.run_until(100.0)
        assert fired == [1, 2, 3]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42.0, lambda: seen.append(engine.now_us))
        engine.run_until(100.0)
        assert seen == [42.0]
        assert engine.now_us == 100.0

    def test_run_until_inclusive(self):
        engine = Engine()
        fired = []
        engine.schedule(50.0, fired.append, "x")
        engine.run_until(50.0)
        assert fired == ["x"]

    def test_events_beyond_horizon_stay_queued(self):
        engine = Engine()
        fired = []
        engine.schedule(200.0, fired.append, "late")
        engine.run_until(100.0)
        assert fired == []
        engine.run_until(300.0)
        assert fired == ["late"]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_in_past_raises(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run_until(20.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10.0, fired.append, "x")
        event.cancel()
        engine.run_until(100.0)
        assert fired == []

    def test_events_scheduled_during_run(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(10.0, chain, n + 1)

        engine.schedule(0.0, chain, 0)
        engine.run_until(100.0)
        assert fired == [0, 1, 2, 3]

    def test_run_all_detects_loops(self):
        engine = Engine()

        def loop():
            engine.schedule(1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run_all(max_events=1000)

    def test_events_fired_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until(10.0)
        assert engine.events_fired == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_firing_order_is_sorted(delays):
    """Events always fire in non-decreasing time order."""
    engine = Engine()
    times = []
    for d in delays:
        engine.schedule(d, lambda: times.append(engine.now_us))
    engine.run_until(2e6)
    assert times == sorted(times)
    assert len(times) == len(delays)


class TestTieBreakEdgeCases:
    def test_fifo_among_schedule_and_schedule_at(self):
        # Mixed absolute/relative scheduling at one timestamp still
        # fires in scheduling order.
        engine = Engine()
        fired = []
        engine.schedule_at(10.0, fired.append, "abs1")
        engine.schedule(10.0, fired.append, "rel")
        engine.schedule_at(10.0, fired.append, "abs2")
        engine.run_until(20.0)
        assert fired == ["abs1", "rel", "abs2"]

    def test_event_scheduled_during_tie_group_fires_last(self):
        # An event scheduled *at the current time* from inside a firing
        # event joins the back of the same-time FIFO group.
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(0.0, fired.append, "nested")

        engine.schedule(10.0, first)
        engine.schedule(10.0, fired.append, "second")
        engine.run_until(20.0)
        assert fired == ["first", "second", "nested"]


class TestCancellationEdgeCases:
    def test_cancelled_head_skipped_without_breaking_ties(self):
        engine = Engine()
        fired = []
        head = engine.schedule(10.0, fired.append, "head")
        engine.schedule(10.0, fired.append, "a")
        engine.schedule(10.0, fired.append, "b")
        head.cancel()
        engine.run_until(20.0)
        assert fired == ["a", "b"]

    def test_cancelled_events_not_counted_as_fired(self):
        engine = Engine()
        keep = engine.schedule(5.0, lambda: None)
        drop = engine.schedule(6.0, lambda: None)
        drop.cancel()
        engine.run_until(10.0)
        assert engine.events_fired == 1
        del keep

    def test_cancel_after_firing_is_noop(self):
        engine = Engine()
        fired = []
        event = engine.schedule(5.0, fired.append, "x")
        engine.run_until(10.0)
        event.cancel()  # already fired; must not corrupt the queue
        engine.schedule(5.0, fired.append, "y")
        engine.run_until(20.0)
        assert fired == ["x", "y"]

    def test_cancel_from_within_earlier_event(self):
        # An earlier event may cancel a same-time event that is queued
        # behind it (FIFO: the canceller must have been scheduled first).
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: victim.cancel())
        victim = engine.schedule(10.0, fired.append, "victim")
        engine.run_until(20.0)
        assert fired == []

    def test_cancelled_tombstones_drain_from_pending(self):
        engine = Engine()
        events = [engine.schedule(float(i), lambda: None) for i in range(5)]
        for event in events:
            event.cancel()
        assert engine.pending == 5
        engine.run_until(10.0)
        assert engine.pending == 0
        assert engine.events_fired == 0
