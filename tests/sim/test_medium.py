"""Tests for the shared medium: carrier sense, collisions, accounting."""

import pytest

from repro.errors import SimulationError
from repro.mac.frames import Frame, FrameType, data_frame
from repro.sim.engine import Engine
from repro.sim.medium import Medium


def make_medium(sensing="psd"):
    engine = Engine()
    return engine, Medium(engine, 30, sensing=sensing)


def tx(medium, node, span, width=5.0, duration=100.0, bss=None, frame=None):
    return medium.begin(
        node,
        bss or node,
        tuple(span),
        width,
        duration,
        duration,
        frame or data_frame(node, "x", 100),
    )


class TestCarrierSense:
    def test_idle_initially(self):
        _, medium = make_medium()
        assert not medium.is_busy(range(30))

    def test_busy_during_transmission(self):
        engine, medium = make_medium()
        tx(medium, "a", [3, 4, 5], width=10.0)
        assert medium.is_busy([4], observer_width_mhz=5.0)
        assert not medium.is_busy([6], observer_width_mhz=5.0)
        engine.run_until(200.0)
        assert not medium.is_busy([4])

    def test_multichannel_sense_any_spanned_channel(self):
        # The paper's QualNet modification: a wide node senses busy when
        # ANY spanned channel carries energy.
        _, medium = make_medium()
        tx(medium, "a", [7], width=5.0)
        assert medium.is_busy([5, 6, 7, 8, 9], observer_width_mhz=20.0)

    def test_psd_blindness_narrow_cannot_sense_wide(self):
        _, medium = make_medium()
        tx(medium, "a", [5, 6, 7, 8, 9], width=20.0)
        # A 5 MHz node cannot sense the 20 MHz transmission (PSD 6 dB
        # down); a 10 MHz node can.
        assert not medium.is_busy([7], observer_width_mhz=5.0)
        assert medium.is_busy([7], observer_width_mhz=10.0)
        assert medium.is_busy([7])  # scanner view sees everything

    def test_perfect_sensing_ablation(self):
        _, medium = make_medium(sensing="perfect")
        tx(medium, "a", [5, 6, 7, 8, 9], width=20.0)
        assert medium.is_busy([7], observer_width_mhz=5.0)

    def test_invalid_sensing_model_raises(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Medium(engine, 30, sensing="psychic")


class TestCollisions:
    def test_overlapping_same_width_both_corrupted(self):
        _, medium = make_medium()
        a = tx(medium, "a", [3], width=5.0)
        b = tx(medium, "b", [3], width=5.0)
        assert a.corrupted and b.corrupted

    def test_disjoint_spans_no_collision(self):
        _, medium = make_medium()
        a = tx(medium, "a", [3], width=5.0)
        b = tx(medium, "b", [10], width=5.0)
        assert not a.corrupted and not b.corrupted

    def test_narrow_captures_over_wide(self):
        # PSD capture: a 5 MHz frame survives an overlap with 20 MHz.
        _, medium = make_medium()
        wide = tx(medium, "w", [5, 6, 7, 8, 9], width=20.0)
        narrow = tx(medium, "n", [7], width=5.0)
        assert wide.corrupted
        assert not narrow.corrupted

    def test_similar_widths_both_lost(self):
        _, medium = make_medium()
        a = tx(medium, "a", [6, 7, 8], width=10.0)
        b = tx(medium, "b", [7], width=5.0)
        assert a.corrupted and b.corrupted

    def test_sequential_transmissions_clean(self):
        engine, medium = make_medium()
        a = tx(medium, "a", [3], duration=100.0)
        engine.run_until(150.0)
        b = tx(medium, "b", [3], duration=100.0)
        engine.run_until(300.0)
        assert not a.corrupted and not b.corrupted


class TestAccounting:
    def test_busy_integral_accumulates(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(500.0)
        tx(medium, "a", [3], duration=50.0)
        engine.run_until(1000.0)
        assert medium.busy_integral_us(3) == pytest.approx(150.0)
        assert medium.busy_integral_us(4) == 0.0

    def test_busy_integral_unions_overlap(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        tx(medium, "b", [3], duration=100.0)
        engine.run_until(1000.0)
        assert medium.busy_integral_us(3) == pytest.approx(100.0)

    def test_open_interval_counted(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=1000.0)
        engine.run_until(400.0)
        assert medium.busy_integral_us(3) == pytest.approx(400.0)

    def test_own_bss_exclusion(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0, bss="mine")
        tx(medium, "b", [4], duration=60.0, bss="other")
        engine.run_until(1000.0)
        assert medium.busy_integral_excluding(3, "mine") == pytest.approx(0.0)
        assert medium.busy_integral_excluding(4, "mine") == pytest.approx(60.0)

    def test_ap_registry(self):
        _, medium = make_medium()
        medium.register_ap("bss1", (3, 4, 5))
        medium.register_ap("bss2", (5,))
        assert medium.ap_count_on(5) == 2
        assert medium.ap_count_on(5, excluding_bss="bss1") == 1
        assert medium.ap_count_on(0) == 0
        medium.unregister_ap("bss1")
        assert medium.ap_count_on(4) == 0


class TestFrameLog:
    def test_successful_frames_logged(self):
        engine, medium = make_medium()
        frame = Frame(FrameType.CHIRP, "c", "*", size_bytes=70)
        tx(medium, "c", [3], duration=100.0, frame=frame)
        engine.run_until(200.0)
        logged = medium.frames_on([3], since_us=0.0)
        assert len(logged) == 1
        assert logged[0][1].frame_type is FrameType.CHIRP

    def test_corrupted_frames_not_logged(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        tx(medium, "b", [3], duration=100.0)
        engine.run_until(200.0)
        assert medium.frames_on([3], since_us=0.0) == []

    def test_since_filter(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(500.0)
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(1000.0)
        assert len(medium.frames_on([3], since_us=0.0)) == 2
        assert len(medium.frames_on([3], since_us=300.0)) == 1


class TestListeners:
    def test_busy_and_idle_edges(self):
        engine, medium = make_medium()
        edges = []
        medium.subscribe("n", (3, 4), 5.0, edges.append)
        tx(medium, "a", [4], width=5.0, duration=100.0)
        engine.run_until(200.0)
        assert edges == [True, False]

    def test_unsensable_tx_no_edge(self):
        engine, medium = make_medium()
        edges = []
        medium.subscribe("n", (7,), 5.0, edges.append)
        tx(medium, "a", [5, 6, 7, 8, 9], width=20.0, duration=100.0)
        engine.run_until(200.0)
        assert edges == []

    def test_unsubscribe(self):
        engine, medium = make_medium()
        edges = []
        medium.subscribe("n", (3,), 5.0, edges.append)
        medium.unsubscribe("n")
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(200.0)
        assert edges == []


class TestValidation:
    def test_empty_span_raises(self):
        _, medium = make_medium()
        with pytest.raises(SimulationError):
            tx(medium, "a", [])

    def test_out_of_range_span_raises(self):
        _, medium = make_medium()
        with pytest.raises(SimulationError):
            tx(medium, "a", [40])


class TestBusyIntegralEdgeCases:
    def test_abutting_intervals_sum_without_gap_or_double_count(self):
        # b starts at the exact instant a ends: the union is one
        # continuous 200 us interval.
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(100.0)  # a's end event fires at t=100
        tx(medium, "b", [3], duration=100.0)
        engine.run_until(500.0)
        assert medium.busy_integral_us(3) == pytest.approx(200.0)

    def test_abutting_before_end_event_processed(self):
        # b begins from an event scheduled at a's end time but *before*
        # a's end event fires (FIFO order): the channel never goes idle
        # and the integral still covers exactly the union.
        engine, medium = make_medium()
        engine.schedule(0.0, tx, medium, "a", [3], 5.0, 100.0)
        engine.schedule(100.0, tx, medium, "b", [3], 5.0, 100.0)
        engine.run_until(500.0)
        assert medium.busy_integral_us(3) == pytest.approx(200.0)

    def test_zero_length_transmission_contributes_nothing(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=0.0)
        engine.run_until(100.0)
        assert medium.busy_integral_us(3) == pytest.approx(0.0)
        assert not medium.is_busy([3])
        assert medium.active == []

    def test_zero_length_inside_busy_interval_no_double_count(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(50.0)
        tx(medium, "b", [3], duration=0.0)
        engine.run_until(500.0)
        assert medium.busy_integral_us(3) == pytest.approx(100.0)

    def test_zero_length_between_abutting_intervals(self):
        engine, medium = make_medium()
        tx(medium, "a", [3], duration=100.0)
        engine.run_until(100.0)
        tx(medium, "b", [3], duration=0.0)
        tx(medium, "c", [3], duration=100.0)
        engine.run_until(500.0)
        assert medium.busy_integral_us(3) == pytest.approx(200.0)
