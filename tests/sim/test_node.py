"""Tests for the CSMA/CA node state machine."""

import random

import pytest

from repro import constants
from repro.mac.frames import Frame, FrameType, data_frame
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.spectrum.channels import WhiteFiChannel

CH5 = WhiteFiChannel(7, 5.0)
CH20 = WhiteFiChannel(7, 20.0)


def make_pair(channel=CH5, sensing="psd"):
    engine = Engine()
    medium = Medium(engine, 30, sensing=sensing)
    registry = {}
    a = SimNode(engine, medium, "a", "bss", channel, random.Random(1))
    b = SimNode(engine, medium, "b", "bss", channel, random.Random(2))
    registry.update({"a": a, "b": b})
    a.nodes = registry
    b.nodes = registry
    return engine, medium, a, b


class TestUnicastExchange:
    def test_successful_delivery(self):
        engine, _, a, b = make_pair()
        a.enqueue(data_frame("a", "b", 1000))
        engine.run_until(100_000.0)
        assert b.delivered_bytes == 1000
        assert a.sent_frames == 1
        assert a.failed_attempts == 0

    def test_delivery_fails_across_width_mismatch(self):
        # "at every node, we explicitly drop packets that were sent at a
        # different channel width" — the receiver being mistuned means no
        # ACK, so the sender retries and finally drops.
        engine, _, a, b = make_pair()
        b.retune(CH20, latency_us=1.0)
        engine.run_until(10.0)
        a.enqueue(data_frame("a", "b", 1000))
        engine.run_until(3_000_000.0)
        assert b.delivered_bytes == 0
        assert a.dropped_frames == 1
        assert a.failed_attempts == constants.MAX_RETRIES + 1

    def test_queue_limit_drops(self):
        _, _, a, _ = make_pair()
        a.queue_limit = 3
        accepted = [a.enqueue(data_frame("a", "b", 10)) for _ in range(5)]
        assert accepted == [True, True, True, False, False]
        assert a.queue_drops == 2

    def test_throughput_counting(self):
        engine, _, a, b = make_pair()
        for _ in range(10):
            a.enqueue(data_frame("a", "b", 1000))
        engine.run_until(1_000_000.0)
        assert b.delivered_bytes == 10_000
        assert b.throughput_mbps(1_000_000.0) == pytest.approx(0.08)


class TestBroadcast:
    def test_beacon_received_by_cochannel_nodes(self):
        engine, _, a, b = make_pair()
        a.enqueue(Frame(FrameType.BEACON, "a"))
        engine.run_until(100_000.0)
        assert b.received_frames == 1

    def test_broadcast_not_received_across_channels(self):
        engine, _, a, b = make_pair()
        b.retune(WhiteFiChannel(20, 5.0), latency_us=1.0)
        engine.run_until(10.0)
        a.enqueue(Frame(FrameType.BEACON, "a"))
        engine.run_until(100_000.0)
        assert b.received_frames == 0

    def test_broadcast_never_retried(self):
        engine, medium, a, b = make_pair()
        a.enqueue(Frame(FrameType.BEACON, "a"))
        b.enqueue(Frame(FrameType.BEACON, "b"))
        engine.run_until(1_000_000.0)
        # Whatever collided was dropped, not retried: queues must drain.
        assert not a.queue and not b.queue


class TestContention:
    def test_two_saturating_nodes_share_medium(self):
        engine, _, a, b = make_pair()
        for _ in range(50):
            a.enqueue(data_frame("a", "b", 1000))
            b.enqueue(data_frame("b", "a", 1000))
        engine.run_until(3_000_000.0)
        # Both make progress (no starvation) and most exchanges succeed.
        assert a.sent_frames >= 40
        assert b.sent_frames >= 40

    def test_nodes_defer_to_each_other(self):
        engine, medium, a, b = make_pair()
        # Track concurrent same-BSS transmissions via collision counters:
        # with only two co-channel nodes, any corruption implies a
        # simultaneous start (vulnerability-window collision) — rare but
        # possible; the vast majority must succeed.
        for _ in range(100):
            a.enqueue(data_frame("a", "b", 500))
        engine.run_until(5_000_000.0)
        assert a.failed_attempts <= 2
        assert b.delivered_bytes >= 98 * 500


class TestRetune:
    def test_retune_latency(self):
        engine, _, a, _ = make_pair()
        a.retune(CH20, latency_us=5_000.0)
        assert a.state == "retuning"
        engine.run_until(4_999.0)
        assert a.tuned is None
        engine.run_until(5_001.0)
        assert a.tuned == CH20

    def test_queued_frames_survive_retune(self):
        engine, _, a, b = make_pair()
        a.enqueue(data_frame("a", "b", 800))
        a.retune(CH20, latency_us=100.0)
        b.retune(CH20, latency_us=100.0)
        engine.run_until(1_000_000.0)
        assert b.delivered_bytes == 800

    def test_retune_during_transmission_deferred(self):
        engine, _, a, b = make_pair()
        a.enqueue(data_frame("a", "b", 1000))
        # Let the transmission start, then request a retune mid-air.
        engine.run_until(400.0)
        assert a.state == "transmitting"
        a.retune(CH20, latency_us=50.0)
        assert a._pending_retune is not None
        engine.run_until(100_000.0)
        assert a.tuned == CH20
        # The in-flight frame completed before the switch.
        assert b.delivered_bytes == 1000

    def test_radio_off(self):
        engine, _, a, _ = make_pair()
        a.retune(None, latency_us=1.0)
        engine.run_until(10.0)
        assert a.tuned is None
        assert a.state == "idle"
