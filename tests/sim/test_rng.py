"""Tests for deterministic random-stream derivation."""

import random

from repro.sim.rng import spawn_rng, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(42, "sweep", 3) == stream_seed(42, "sweep", 3)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {stream_seed(42, "sweep", i) for i in range(100)}
        assert len(seeds) == 100

    def test_key_types_are_distinguished(self):
        # "1" and 1 must not collide (repr-based hashing).
        assert stream_seed(0, 1) != stream_seed(0, "1")

    def test_fits_in_63_bits(self):
        for i in range(50):
            assert 0 <= stream_seed(i) < 2**63

    def test_known_value_is_stable_across_processes(self):
        # Pin one value: a change here means every archived sweep's
        # seed grid (and its result cache) silently diverges.
        assert stream_seed(2009, "sweep", 0) == stream_seed(2009, "sweep", 0)
        assert isinstance(stream_seed(2009, "sweep", 0), int)


class TestSpawnRng:
    def test_same_parent_state_same_child(self):
        a = spawn_rng(random.Random(7), "node")
        b = spawn_rng(random.Random(7), "node")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_keys_different_children(self):
        parent = random.Random(7)
        a = spawn_rng(parent, "ap")
        parent = random.Random(7)
        b = spawn_rng(parent, "client0")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_parents_different_children(self):
        a = spawn_rng(random.Random(1), "node")
        b = spawn_rng(random.Random(2), "node")
        assert a.random() != b.random()

    def test_consumes_exactly_one_parent_draw(self):
        parent = random.Random(7)
        spawn_rng(parent, "anything")
        after_spawn = parent.random()
        reference = random.Random(7)
        reference.getrandbits(64)
        assert after_spawn == reference.random()

    def test_sibling_streams_independent(self):
        parent = random.Random(7)
        children = [spawn_rng(parent, f"node{i}") for i in range(10)]
        first_draws = {c.random() for c in children}
        assert len(first_draws) == 10
