"""Tests for the scenario run functions and OPT baselines."""

import pytest

from repro.errors import SimulationError
from repro.experiments import BackgroundSpec, ScenarioConfig
from repro.experiments.runs import (
    find_opt_static,
    run_opt_baselines,
    run_static,
    run_whitefi,
)
from repro.spectrum.spectrum_map import SpectrumMap
from repro.spectrum.channels import WhiteFiChannel


def test_sim_runner_shim_is_gone():
    # The deprecated repro.sim.runner compatibility shim was removed
    # after downstreams migrated to repro.experiments; a stale import
    # must fail loudly rather than silently resurrect old wiring.
    with pytest.raises(ModuleNotFoundError):
        import repro.sim.runner  # noqa: F401

FIVE_FREE = SpectrumMap.from_free(range(5, 10), 30)


def small_config(**overrides):
    defaults = dict(
        base_map=FIVE_FREE,
        num_clients=1,
        backgrounds=[],
        duration_us=1_000_000.0,
        warmup_us=100_000.0,
        seed=7,
        uplink=False,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestScenarioConfig:
    def test_union_map_with_client_maps(self):
        ap_map = SpectrumMap.from_free(range(5, 10), 30)
        client_map = SpectrumMap.from_free(range(6, 11), 30)
        cfg = small_config(ap_map=ap_map, client_maps=[client_map])
        assert cfg.union_map().free_indices() == (6, 7, 8, 9)

    def test_client_map_count_mismatch_raises(self):
        cfg = small_config(client_maps=[FIVE_FREE, FIVE_FREE])
        with pytest.raises(SimulationError):
            cfg.effective_client_maps()

    def test_candidate_channels_match_fragment(self):
        cfg = small_config()
        widths = sorted(c.width_mhz for c in cfg.candidate_channels())
        assert widths == [5.0] * 5 + [10.0] * 3 + [20.0]

    def test_background_on_occupied_channel_raises(self):
        cfg = small_config(backgrounds=[BackgroundSpec(0, 10_000.0)])
        with pytest.raises(SimulationError):
            run_static(cfg, WhiteFiChannel(7, 5.0))

    def test_churn_and_windows_exclusive(self):
        with pytest.raises(SimulationError):
            BackgroundSpec(
                5, 10_000.0, churn=(1.0, 1.0), active_windows=((0.0, 1.0),)
            )


class TestRunStatic:
    def test_wider_channel_faster_when_clean(self):
        cfg = small_config()
        r5 = run_static(cfg, WhiteFiChannel(7, 5.0))
        r20 = run_static(cfg, WhiteFiChannel(7, 20.0))
        assert r20.aggregate_mbps > 3 * r5.aggregate_mbps

    def test_throughput_near_phy_limit(self):
        cfg = small_config()
        result = run_static(cfg, WhiteFiChannel(7, 20.0))
        assert 4.0 <= result.aggregate_mbps <= 6.0

    def test_background_reduces_throughput(self):
        quiet = run_static(small_config(), WhiteFiChannel(7, 20.0))
        busy = run_static(
            small_config(
                backgrounds=[BackgroundSpec(i, 20_000.0) for i in range(5, 10)]
            ),
            WhiteFiChannel(7, 20.0),
        )
        assert busy.aggregate_mbps < quiet.aggregate_mbps

    def test_deterministic_for_seed(self):
        a = run_static(small_config(), WhiteFiChannel(7, 10.0))
        b = run_static(small_config(), WhiteFiChannel(7, 10.0))
        assert a.aggregate_mbps == b.aggregate_mbps

    def test_timeline_sampling(self):
        cfg = small_config(duration_us=900_000.0)
        result = run_static(
            cfg, WhiteFiChannel(7, 20.0), timeline_interval_us=300_000.0
        )
        assert len(result.throughput_timeline) == 3
        assert all(mbps > 0 for _, mbps in result.throughput_timeline)


class TestOptBaselines:
    def test_find_opt_picks_quiet_position(self):
        # Background saturates channels 5-6; the best 10 MHz position
        # must avoid them (center 8 spans 7,8,9).
        cfg = small_config(
            backgrounds=[
                BackgroundSpec(5, 3_000.0),
                BackgroundSpec(6, 3_000.0),
            ],
            duration_us=800_000.0,
        )
        channel, result = find_opt_static(
            cfg, 10.0, probe_duration_us=400_000.0
        )
        assert channel == WhiteFiChannel(8, 10.0)
        assert result is not None

    def test_unavailable_width_returns_none(self):
        cfg = small_config(base_map=SpectrumMap.from_free({3, 7}, 30))
        channel, result = find_opt_static(cfg, 20.0)
        assert channel is None and result is None

    def test_opt_is_best_of_widths(self):
        cfg = small_config(duration_us=600_000.0)
        results = run_opt_baselines(cfg, probe_duration_us=300_000.0)
        opt = results["opt"]
        assert opt is not None
        for key in ("opt-5mhz", "opt-10mhz", "opt-20mhz"):
            if results[key] is not None:
                assert opt.aggregate_mbps >= results[key].aggregate_mbps


class TestRunWhiteFi:
    def test_clean_spectrum_picks_widest(self):
        cfg = small_config(duration_us=2_000_000.0)
        result = run_whitefi(cfg)
        assert result.final_channel is not None
        assert result.final_channel.width_mhz == 20.0

    def test_near_static_optimum_when_clean(self):
        cfg = small_config(duration_us=2_000_000.0)
        adaptive = run_whitefi(cfg)
        static = run_static(cfg, WhiteFiChannel(7, 20.0))
        assert adaptive.aggregate_mbps >= 0.85 * static.aggregate_mbps

    def test_mcham_timeline_recorded(self):
        cfg = small_config(duration_us=2_000_000.0)
        result = run_whitefi(cfg, reeval_interval_us=500_000.0)
        assert len(result.mcham_timeline) >= 2
        _, scores = result.mcham_timeline[0]
        assert set(scores) == {5.0, 10.0, 20.0}
        # Clean spectrum: MCham equals the capacity factors (Example 1).
        assert scores[20.0] == pytest.approx(4.0, abs=0.3)
        assert scores[10.0] == pytest.approx(2.0, abs=0.2)
        assert scores[5.0] == pytest.approx(1.0, abs=0.1)

    def test_adapts_away_from_loaded_fragment(self):
        # Saturating background on 3 of the 5 channels in the fragment:
        # the 20 MHz option must lose to a quieter narrow option.
        cfg = small_config(
            backgrounds=[BackgroundSpec(i, 2_000.0) for i in (5, 6, 7)],
            duration_us=3_000_000.0,
        )
        result = run_whitefi(cfg)
        final = result.final_channel
        assert final is not None
        assert final.width_mhz < 20.0
        # The saturated low channels must not dominate the choice: at
        # most one loaded channel may remain under the span (an MCham
        # tie between a clean 5 MHz and a 10 MHz touching channel 7).
        assert len(set(final.spanned_indices) & {5, 6, 7}) <= 1

    def test_spatial_variation_restricts_candidates(self):
        ap_map = FIVE_FREE
        client_map = FIVE_FREE.with_occupied(9)
        cfg = small_config(
            ap_map=ap_map, client_maps=[client_map], duration_us=1_500_000.0
        )
        result = run_whitefi(cfg)
        final = result.final_channel
        assert final is not None
        assert 9 not in final.spanned_indices
