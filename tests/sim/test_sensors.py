"""Tests for in-simulation airtime/AP-count sensors."""

import random

import pytest

from repro.errors import SimulationError
from repro.mac.frames import data_frame
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.sensors import GroundTruthSensor


def busy_tx(medium, node, bss, span, duration):
    return medium.begin(
        node, bss, tuple(span), 5.0, duration, duration, data_frame(node, "x", 10)
    )


class TestGroundTruthSensor:
    def test_idle_observation(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium)
        engine.run_until(1000.0)
        obs = sensor.observe("me")
        assert all(b == 0.0 for b in obs.busy_fraction)

    def test_busy_fraction_windowed(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium)
        busy_tx(medium, "a", "other", [3], 250.0)
        engine.run_until(1000.0)
        obs = sensor.observe("me")
        assert obs.busy_fraction[3] == pytest.approx(0.25)
        # Second window: channel idle again.
        engine.run_until(2000.0)
        obs2 = sensor.observe("me")
        assert obs2.busy_fraction[3] == 0.0

    def test_own_bss_excluded(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium)
        busy_tx(medium, "a", "mine", [3], 500.0)
        busy_tx(medium, "b", "other", [4], 500.0)
        engine.run_until(1000.0)
        obs = sensor.observe("mine")
        assert obs.busy_fraction[3] == pytest.approx(0.0)
        assert obs.busy_fraction[4] == pytest.approx(0.5)

    def test_ap_counts_exclude_self(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium)
        medium.register_ap("mine", (3,))
        medium.register_ap("other", (3, 4))
        obs = sensor.observe("mine")
        assert obs.ap_count[3] == 1
        assert obs.ap_count[4] == 1

    def test_noise_stays_in_bounds(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium, noise_std=0.5, rng=random.Random(1))
        engine.run_until(1000.0)
        obs = sensor.observe("me")
        assert all(0.0 <= b <= 1.0 for b in obs.busy_fraction)

    def test_negative_noise_raises(self):
        engine = Engine()
        medium = Medium(engine, 30)
        with pytest.raises(SimulationError):
            GroundTruthSensor(medium, noise_std=-0.1)

    def test_reset_starts_fresh_window(self):
        engine = Engine()
        medium = Medium(engine, 30)
        sensor = GroundTruthSensor(medium)
        busy_tx(medium, "a", "other", [3], 500.0)
        engine.run_until(1000.0)
        sensor.reset("me")
        engine.run_until(2000.0)
        obs = sensor.observe("me")
        assert obs.busy_fraction[3] == 0.0
