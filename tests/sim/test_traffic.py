"""Tests for traffic generators and churn."""

import random

import pytest

from repro.errors import SimulationError
from repro.mac.frames import data_frame
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.sim.node import SimNode
from repro.sim.traffic import (
    CbrSource,
    MarkovChurn,
    RoundRobinSaturatingSource,
    SaturatingSource,
    ScheduledActivity,
)
from repro.spectrum.channels import WhiteFiChannel

CH = WhiteFiChannel(5, 5.0)


def make_world(n_nodes=2):
    engine = Engine()
    medium = Medium(engine, 30)
    registry = {}
    nodes = []
    for i in range(n_nodes):
        node = SimNode(engine, medium, f"n{i}", "bss", CH, random.Random(i))
        node.nodes = registry
        registry[node.node_id] = node
        nodes.append(node)
    return engine, nodes


class TestSaturatingSource:
    def test_queue_never_starves(self):
        engine, (a, b) = make_world()
        SaturatingSource(a, "n1").start()
        engine.run_until(2_000_000.0)
        assert b.delivered_bytes > 100_000  # many packets delivered

    def test_refills_one_at_a_time(self):
        engine, (a, b) = make_world()
        SaturatingSource(a, "n1").start()
        engine.run_until(100_000.0)
        assert len(a.queue) <= 1


class TestRoundRobin:
    def test_cycles_destinations(self):
        engine, nodes = make_world(4)
        source = RoundRobinSaturatingSource(nodes[0], ["n1", "n2", "n3"])
        source.start()
        engine.run_until(2_000_000.0)
        delivered = [n.delivered_bytes for n in nodes[1:]]
        assert all(d > 0 for d in delivered)
        assert max(delivered) - min(delivered) <= 2000  # near-even split

    def test_empty_destinations_raise(self):
        engine, nodes = make_world(1)
        with pytest.raises(SimulationError):
            RoundRobinSaturatingSource(nodes[0], [])


class TestCbr:
    def test_injection_rate(self):
        engine, (a, b) = make_world()
        source = CbrSource(engine, a, "n1", inter_packet_delay_us=10_000.0)
        engine.run_until(1_000_000.0)
        assert source.injected == pytest.approx(100, abs=2)

    def test_inactive_source_injects_nothing(self):
        engine, (a, b) = make_world()
        source = CbrSource(engine, a, "n1", 10_000.0)
        source.active = False
        engine.run_until(500_000.0)
        assert source.injected == 0
        assert b.delivered_bytes == 0

    def test_negative_delay_raises(self):
        engine, (a, _) = make_world()
        with pytest.raises(SimulationError):
            CbrSource(engine, a, "n1", -1.0)


class TestScheduledActivity:
    def test_windows_gate_traffic(self):
        engine, (a, b) = make_world()
        source = CbrSource(engine, a, "n1", 10_000.0)
        ScheduledActivity(
            engine, source, [(100_000.0, 200_000.0), (400_000.0, 500_000.0)]
        )
        engine.run_until(600_000.0)
        # Two 100 ms active windows at 10 ms per packet: ~20 injections.
        assert 15 <= source.injected <= 25

    def test_invalid_window_raises(self):
        engine, (a, _) = make_world()
        source = CbrSource(engine, a, "n1", 10_000.0)
        with pytest.raises(SimulationError):
            ScheduledActivity(engine, source, [(200.0, 100.0)])


class TestMarkovChurn:
    def test_stationary_probability(self):
        churn_args = (60_000.0, 120_000.0)  # active 1/3 of the time
        engine, (a, _) = make_world()
        source = CbrSource(engine, a, "n1", 1_000_000.0)
        churn = MarkovChurn(
            engine, source, *churn_args, random.Random(3)
        )
        assert churn.stationary_active_probability == pytest.approx(1 / 3)

    def test_transitions_happen(self):
        engine, (a, _) = make_world()
        source = CbrSource(engine, a, "n1", 1_000_000.0)
        churn = MarkovChurn(
            engine, source, 50_000.0, 50_000.0, random.Random(3)
        )
        engine.run_until(2_000_000.0)
        assert churn.transitions >= 10

    def test_always_passive_extreme(self):
        engine, (a, b) = make_world()
        source = CbrSource(engine, a, "n1", 10_000.0)
        MarkovChurn(engine, source, 0.0, 1.0, random.Random(1), start_active=False)
        engine.run_until(500_000.0)
        assert source.injected == 0

    def test_always_active_extreme(self):
        engine, (a, b) = make_world()
        source = CbrSource(engine, a, "n1", 10_000.0)
        MarkovChurn(engine, source, 1.0, 0.0, random.Random(1), start_active=True)
        engine.run_until(500_000.0)
        assert source.injected > 0

    def test_empirical_duty_cycle(self):
        engine, (a, _) = make_world()
        source = CbrSource(engine, a, "n1", 1_000.0)
        MarkovChurn(engine, source, 30_000.0, 90_000.0, random.Random(5))
        engine.run_until(10_000_000.0)
        duty = source.injected / 10_000.0
        assert duty == pytest.approx(0.25, abs=0.08)
