"""Tests for airtime observations and node reports."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpectrumMapError
from repro.spectrum.airtime import (
    AirtimeObservation,
    NodeReport,
    average_airtime,
)
from repro.spectrum.spectrum_map import SpectrumMap


class TestAirtimeObservation:
    def test_idle(self):
        obs = AirtimeObservation.idle(5)
        assert obs.busy_fraction == (0.0,) * 5
        assert obs.ap_count == (0,) * 5

    def test_from_mappings(self):
        obs = AirtimeObservation.from_mappings({2: 0.5}, {2: 3}, 4)
        assert obs.busy(2) == 0.5
        assert obs.aps(2) == 3
        assert obs.busy(0) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SpectrumMapError):
            AirtimeObservation((0.1, 0.2), (0,))

    def test_out_of_range_busy_raises(self):
        with pytest.raises(SpectrumMapError):
            AirtimeObservation((1.5,), (0,))
        with pytest.raises(SpectrumMapError):
            AirtimeObservation((-0.1,), (0,))

    def test_negative_ap_count_raises(self):
        with pytest.raises(SpectrumMapError):
            AirtimeObservation((0.5,), (-1,))

    def test_clamped_is_identity_for_valid(self):
        obs = AirtimeObservation((0.3, 1.0), (1, 0))
        assert obs.clamped() == obs


class TestNodeReport:
    def test_valid_report(self):
        report = NodeReport(
            "client0", SpectrumMap.all_free(5), AirtimeObservation.idle(5)
        )
        assert report.node_id == "client0"

    def test_size_mismatch_raises(self):
        with pytest.raises(SpectrumMapError):
            NodeReport(
                "c", SpectrumMap.all_free(5), AirtimeObservation.idle(6)
            )


class TestAverage:
    def test_average_busy(self):
        a = AirtimeObservation((0.2, 0.4), (1, 0))
        b = AirtimeObservation((0.4, 0.0), (0, 2))
        avg = average_airtime([a, b])
        assert avg.busy_fraction == pytest.approx((0.3, 0.2))
        # AP counts take the max (any observer's contender contends).
        assert avg.ap_count == (1, 2)

    def test_average_empty_raises(self):
        with pytest.raises(SpectrumMapError):
            average_airtime([])

    def test_average_size_mismatch_raises(self):
        with pytest.raises(SpectrumMapError):
            average_airtime(
                [AirtimeObservation.idle(3), AirtimeObservation.idle(4)]
            )


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_property_average_stays_in_bounds(busy):
    """Averaged busy fractions remain within [0, 1]."""
    obs = AirtimeObservation(tuple(busy), (0,) * len(busy))
    avg = average_airtime([obs, obs, obs])
    assert all(0.0 <= b <= 1.0 for b in avg.busy_fraction)
    assert avg.busy_fraction == pytest.approx(tuple(busy))
