"""Tests for the UHF band plan and WhiteFi channel enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.errors import ChannelError
from repro.spectrum.channels import (
    US_BAND_PLAN,
    UhfBandPlan,
    WhiteFiChannel,
    channels_overlapping_index,
    count_by_width,
    enumerate_channels,
    valid_channels,
)


class TestUhfBandPlan:
    def test_thirty_usable_channels(self):
        assert US_BAND_PLAN.num_channels == 30

    def test_channel_numbers_skip_37(self):
        numbers = US_BAND_PLAN.channel_numbers
        assert 37 not in numbers
        assert numbers[0] == 21
        assert numbers[-1] == 51

    def test_index_round_trip(self):
        for index in range(30):
            number = US_BAND_PLAN.number_of(index)
            assert US_BAND_PLAN.index_of(number) == index

    def test_index_of_reserved_channel_raises(self):
        with pytest.raises(ChannelError):
            US_BAND_PLAN.index_of(37)

    def test_index_of_out_of_band_raises(self):
        with pytest.raises(ChannelError):
            US_BAND_PLAN.index_of(20)
        with pytest.raises(ChannelError):
            US_BAND_PLAN.index_of(52)

    def test_number_of_out_of_range_raises(self):
        with pytest.raises(ChannelError):
            US_BAND_PLAN.number_of(30)
        with pytest.raises(ChannelError):
            US_BAND_PLAN.number_of(-1)

    def test_channel_21_center_frequency(self):
        # Channel 21 occupies 512-518 MHz.
        assert US_BAND_PLAN.center_frequency_mhz(0) == pytest.approx(515.0)

    def test_channel_51_center_frequency(self):
        # Channel 51 occupies 692-698 MHz.
        assert US_BAND_PLAN.center_frequency_mhz(29) == pytest.approx(695.0)

    def test_adjacency_across_channel_37_gap(self):
        # TV channels 36 and 38 are adjacent indices but not physically
        # adjacent (channel 37 sits between them).
        idx36 = US_BAND_PLAN.index_of(36)
        idx38 = US_BAND_PLAN.index_of(38)
        assert idx38 == idx36 + 1
        assert not US_BAND_PLAN.indices_are_physically_adjacent(idx36, idx38)

    def test_adjacency_normal_case(self):
        assert US_BAND_PLAN.indices_are_physically_adjacent(0, 1)

    def test_invalid_band_plan_raises(self):
        with pytest.raises(ChannelError):
            UhfBandPlan(first=50, last=40)


class TestWhiteFiChannel:
    def test_span_by_width(self):
        assert WhiteFiChannel(10, 5.0).span == 1
        assert WhiteFiChannel(10, 10.0).span == 3
        assert WhiteFiChannel(10, 20.0).span == 5

    def test_spanned_indices_centered(self):
        assert WhiteFiChannel(10, 20.0).spanned_indices == (8, 9, 10, 11, 12)
        assert WhiteFiChannel(10, 10.0).spanned_indices == (9, 10, 11)
        assert WhiteFiChannel(10, 5.0).spanned_indices == (10,)

    def test_unsupported_width_raises(self):
        with pytest.raises(ChannelError):
            WhiteFiChannel(10, 15.0)

    def test_out_of_band_span_raises(self):
        with pytest.raises(ChannelError):
            WhiteFiChannel(0, 20.0)  # would span -2..2
        with pytest.raises(ChannelError):
            WhiteFiChannel(29, 10.0)  # would span 28..30

    def test_overlap_detection(self):
        wide = WhiteFiChannel(10, 20.0)
        assert wide.overlaps(WhiteFiChannel(12, 5.0))
        assert not wide.overlaps(WhiteFiChannel(13, 5.0))
        # 13 at 10 MHz spans 12,13,14 — overlaps the wide channel at 12.
        assert wide.overlaps(WhiteFiChannel(13, 10.0))
        # 14 at 10 MHz spans 13,14,15 — does not overlap 8..12.
        assert not wide.overlaps(WhiteFiChannel(14, 10.0))

    def test_capacity_factor(self):
        assert WhiteFiChannel(5, 5.0).capacity_factor() == 1.0
        assert WhiteFiChannel(5, 10.0).capacity_factor() == 2.0
        assert WhiteFiChannel(5, 20.0).capacity_factor() == 4.0

    def test_contains_index(self):
        channel = WhiteFiChannel(10, 10.0)
        assert channel.contains_index(9)
        assert channel.contains_index(11)
        assert not channel.contains_index(12)


class TestEnumeration:
    def test_paper_counts_84_total(self):
        channels = enumerate_channels()
        counts = count_by_width(channels)
        # "There are a total of 30 5MHz WhiteFi channels, 28 10MHz
        # channels, and 26 20MHz channels."
        assert counts[5.0] == 30
        assert counts[10.0] == 28
        assert counts[20.0] == 26
        assert len(channels) == 84

    def test_gap_strict_mode_removes_spanning_channels(self):
        lax = enumerate_channels(allow_gap_spanning=True)
        strict = enumerate_channels(allow_gap_spanning=False)
        assert len(strict) < len(lax)
        # Every strict channel must not straddle the 36/38 boundary.
        idx36 = US_BAND_PLAN.index_of(36)
        for channel in strict:
            spanned = channel.spanned_indices
            assert not (idx36 in spanned and idx36 + 1 in spanned)

    def test_small_index_space(self):
        channels = enumerate_channels(5)
        counts = count_by_width(channels)
        assert counts[5.0] == 5
        assert counts[10.0] == 3
        assert counts[20.0] == 1

    def test_invalid_size_raises(self):
        with pytest.raises(ChannelError):
            enumerate_channels(0)

    def test_valid_channels_requires_whole_span_free(self):
        # Free fragment 3..7 (5 channels): one 20 MHz fits, three 10 MHz.
        channels = valid_channels(range(3, 8), 30)
        counts = count_by_width(channels)
        assert counts[5.0] == 5
        assert counts[10.0] == 3
        assert counts[20.0] == 1

    def test_valid_channels_fragmented(self):
        channels = valid_channels({0, 2, 4}, 30)
        assert all(c.width_mhz == 5.0 for c in channels)

    def test_channels_overlapping_index(self):
        overlapping = list(channels_overlapping_index(10))
        assert WhiteFiChannel(10, 5.0) in overlapping
        assert WhiteFiChannel(9, 10.0) in overlapping
        assert WhiteFiChannel(12, 20.0) in overlapping
        assert WhiteFiChannel(13, 20.0) not in overlapping


@given(
    center=st.integers(min_value=0, max_value=29),
    width=st.sampled_from([5.0, 10.0, 20.0]),
)
def test_property_span_matches_width(center, width):
    """Span size always matches the width's UHF-channel count."""
    half = constants.span_channels(width) // 2
    if center - half < 0 or center + half > 29:
        with pytest.raises(ChannelError):
            WhiteFiChannel(center, width)
        return
    channel = WhiteFiChannel(center, width)
    assert len(channel.spanned_indices) == constants.span_channels(width)
    assert channel.spanned_indices[len(channel.spanned_indices) // 2] == center


@given(free=st.sets(st.integers(min_value=0, max_value=29)))
def test_property_valid_channels_subset_of_free(free):
    """Every valid channel's span lies entirely inside the free set."""
    for channel in valid_channels(free, 30):
        assert set(channel.spanned_indices) <= free


@given(
    a=st.integers(min_value=2, max_value=27),
    b=st.integers(min_value=2, max_value=27),
    wa=st.sampled_from([5.0, 10.0, 20.0]),
    wb=st.sampled_from([5.0, 10.0, 20.0]),
)
def test_property_overlap_is_symmetric(a, b, wa, wb):
    """Channel overlap is a symmetric relation."""
    ca, cb = WhiteFiChannel(a, wa), WhiteFiChannel(b, wb)
    assert ca.overlaps(cb) == cb.overlaps(ca)
