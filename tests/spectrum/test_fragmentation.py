"""Tests for contiguous-fragment extraction and histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.spectrum.fragmentation import (
    Fragment,
    fragment_histogram,
    fragment_widths,
    fragments,
    max_fragment_width,
    single_fragment_map,
    widest_fragment,
)
from repro.spectrum.spectrum_map import SpectrumMap


class TestFragments:
    def test_simple_extraction(self):
        m = SpectrumMap([1, 0, 0, 1, 0])
        assert fragments(m) == [Fragment(1, 2), Fragment(4, 1)]

    def test_all_free_is_one_fragment(self):
        m = SpectrumMap.all_free(30)
        assert fragments(m) == [Fragment(0, 30)]

    def test_all_occupied_has_none(self):
        assert fragments(SpectrumMap.all_occupied(10)) == []

    def test_fragment_at_band_edges(self):
        m = SpectrumMap([0, 1, 1, 1, 0])
        assert fragments(m) == [Fragment(0, 1), Fragment(4, 1)]

    def test_fragment_properties(self):
        f = Fragment(3, 4)
        assert f.stop == 7
        assert f.indices == (3, 4, 5, 6)
        assert f.width_mhz == 24.0

    def test_widest_fragment(self):
        m = SpectrumMap([0, 1, 0, 0, 0, 1, 0])
        assert widest_fragment(m) == Fragment(2, 3)

    def test_widest_fragment_none_when_full(self):
        assert widest_fragment(SpectrumMap.all_occupied(5)) is None

    def test_paper_building5_fragments(self):
        # Free: 26-30, 33-35, 39, 48 -> fragments of 5, 3, 1, 1 channels.
        m = SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)
        assert sorted(fragment_widths(m)) == [1, 1, 3, 5]


class TestHistogram:
    def test_histogram_aggregates_across_maps(self):
        maps = [SpectrumMap([0, 1, 0]), SpectrumMap([0, 0, 1])]
        hist = fragment_histogram(maps)
        assert hist[1] == 2  # two 1-channel fragments
        assert hist[2] == 1  # one 2-channel fragment

    def test_max_fragment_width(self):
        maps = [SpectrumMap([0, 1, 0]), SpectrumMap([0, 0, 0, 1])]
        assert max_fragment_width(maps) == 3

    def test_max_fragment_width_all_occupied(self):
        assert max_fragment_width([SpectrumMap.all_occupied(4)]) == 0


class TestSingleFragmentMap:
    def test_basic(self):
        m = single_fragment_map(4, 30, start=10)
        assert fragments(m) == [Fragment(10, 4)]

    def test_full_band(self):
        m = single_fragment_map(30, 30)
        assert m.num_free() == 30

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            single_fragment_map(0, 30)
        with pytest.raises(ValueError):
            single_fragment_map(31, 30)

    def test_overflowing_start_raises(self):
        with pytest.raises(ValueError):
            single_fragment_map(5, 30, start=28)


@given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
def test_property_fragments_cover_exactly_free_channels(bits):
    """Fragments partition the free channels exactly."""
    m = SpectrumMap(bits)
    covered = [i for f in fragments(m) for i in f.indices]
    assert covered == list(m.free_indices())


@given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
def test_property_fragments_are_maximal(bits):
    """No fragment touches another (they are separated by occupancy)."""
    m = SpectrumMap(bits)
    frags = fragments(m)
    for a, b in zip(frags, frags[1:]):
        assert b.start > a.stop  # at least one occupied channel between
