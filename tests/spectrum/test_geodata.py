"""Tests for the synthetic TV-Fool locale generator (Figure 2 inputs)."""

import random

import pytest

from repro.spectrum.fragmentation import fragment_histogram, max_fragment_width
from repro.spectrum.geodata import (
    SETTINGS,
    generate_locale,
    generate_locales,
    generate_study,
    iter_maps,
)


class TestGenerateLocale:
    def test_unknown_setting_raises(self):
        with pytest.raises(ValueError):
            generate_locale("exurban", random.Random(0))

    def test_deterministic_for_seeded_rng(self):
        a = generate_locale("urban", random.Random(42), name="x")
        b = generate_locale("urban", random.Random(42), name="x")
        assert a.spectrum_map == b.spectrum_map

    def test_never_fully_occupied(self):
        for seed in range(20):
            locale = generate_locale("urban", random.Random(seed))
            assert locale.num_free >= 1


class TestSettingsOrdering:
    def test_occupancy_decreases_with_population_density(self):
        study = generate_study(count_per_setting=10, seed=5)
        mean_free = {
            setting: sum(l.num_free for l in locales) / len(locales)
            for setting, locales in study.items()
        }
        assert mean_free["urban"] < mean_free["suburban"] < mean_free["rural"]

    def test_rural_has_wide_fragments(self):
        # Figure 2: "In rural areas fragments of up to 16 channels are
        # expected."
        locales = generate_locales("rural", 10, seed=2009)
        assert max_fragment_width(list(iter_maps(locales))) >= 10

    def test_every_setting_has_a_four_channel_fragment(self):
        # Figure 2: "in all 3 settings there is at least one locale in
        # which there is a fragment of 4 contiguous channels available".
        study = generate_study(count_per_setting=10, seed=2009)
        for setting, locales in study.items():
            assert (
                max_fragment_width(list(iter_maps(locales))) >= 4
            ), f"no 4-channel fragment in any {setting} locale"

    def test_urban_dominated_by_narrow_fragments(self):
        locales = generate_locales("urban", 10, seed=2009)
        hist = fragment_histogram(iter_maps(locales))
        narrow = hist[1] + hist[2]
        wide = sum(count for width, count in hist.items() if width >= 5)
        assert narrow > wide


class TestStudyShape:
    def test_study_contains_all_settings(self):
        study = generate_study(count_per_setting=3, seed=1)
        assert set(study) == set(SETTINGS)
        for locales in study.values():
            assert len(locales) == 3

    def test_locale_names_unique(self):
        locales = generate_locales("suburban", 10, seed=3)
        names = [l.name for l in locales]
        assert len(set(names)) == len(names)

    def test_reproducible_study(self):
        a = generate_study(count_per_setting=4, seed=11)
        b = generate_study(count_per_setting=4, seed=11)
        for setting in SETTINGS:
            assert [l.spectrum_map for l in a[setting]] == [
                l.spectrum_map for l in b[setting]
            ]
