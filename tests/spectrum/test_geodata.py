"""Tests for the synthetic TV-Fool locale generator (Figure 2 inputs)."""

import random

import pytest

from repro.spectrum.fragmentation import fragment_histogram, max_fragment_width
from repro.spectrum.geodata import (
    _OCCUPIED_BOUNDS,
    SETTINGS,
    generate_locale,
    generate_locales,
    generate_study,
    iter_maps,
)

#: Seeds the drift-guard invariants are checked over: the docstring's
#: fragmentation claims must hold for *any* study seed, not just the
#: default 2009 one the figures use.
DRIFT_SEEDS = (2009, 2010, 2011, 2012, 2013)


class TestGenerateLocale:
    def test_unknown_setting_raises(self):
        with pytest.raises(ValueError):
            generate_locale("exurban", random.Random(0))

    def test_deterministic_for_seeded_rng(self):
        a = generate_locale("urban", random.Random(42), name="x")
        b = generate_locale("urban", random.Random(42), name="x")
        assert a.spectrum_map == b.spectrum_map

    def test_never_fully_occupied(self):
        for seed in range(20):
            locale = generate_locale("urban", random.Random(seed))
            assert locale.num_free >= 1


class TestSettingsOrdering:
    def test_occupancy_decreases_with_population_density(self):
        study = generate_study(count_per_setting=10, seed=5)
        mean_free = {
            setting: sum(loc.num_free for loc in locales) / len(locales)
            for setting, locales in study.items()
        }
        assert mean_free["urban"] < mean_free["suburban"] < mean_free["rural"]

    def test_rural_has_wide_fragments(self):
        # Figure 2: "In rural areas fragments of up to 16 channels are
        # expected."
        locales = generate_locales("rural", 10, seed=2009)
        assert max_fragment_width(list(iter_maps(locales))) >= 10

    def test_every_setting_has_a_four_channel_fragment(self):
        # Figure 2: "in all 3 settings there is at least one locale in
        # which there is a fragment of 4 contiguous channels available".
        study = generate_study(count_per_setting=10, seed=2009)
        for setting, locales in study.items():
            assert (
                max_fragment_width(list(iter_maps(locales))) >= 4
            ), f"no 4-channel fragment in any {setting} locale"

    def test_urban_dominated_by_narrow_fragments(self):
        locales = generate_locales("urban", 10, seed=2009)
        hist = fragment_histogram(iter_maps(locales))
        narrow = hist[1] + hist[2]
        wide = sum(count for width, count in hist.items() if width >= 5)
        assert narrow > wide


class TestDocstringInvariants:
    """Drift guards for the module docstring's generative claims.

    The wsdb metro generator and the Figure 2/9 benches all build on
    these distributional properties; a silent change to the generative
    model would skew every downstream figure, so each claim is pinned
    across several seeds rather than the single default one.
    """

    def test_every_setting_has_a_four_channel_fragment_across_seeds(self):
        for seed in DRIFT_SEEDS:
            study = generate_study(count_per_setting=10, seed=seed)
            for setting, locales in study.items():
                assert max_fragment_width(list(iter_maps(locales))) >= 4, (
                    f"no 4-channel fragment in any {setting} locale "
                    f"(seed {seed})"
                )

    def test_rural_fragments_reach_toward_sixteen(self):
        # "rural locales exhibit fragments up to 16 channels": the
        # widest rural fragment over a few studies must actually get
        # there, and every study must stay comfortably wide.
        widest = 0
        for seed in DRIFT_SEEDS:
            locales = generate_locales("rural", 10, seed=seed)
            width = max_fragment_width(list(iter_maps(locales)))
            assert width >= 10, f"rural fragments collapsed (seed {seed})"
            widest = max(widest, width)
        assert widest >= 16

    def test_urban_dominated_by_narrow_fragments_across_seeds(self):
        for seed in DRIFT_SEEDS:
            locales = generate_locales("urban", 10, seed=seed)
            hist = fragment_histogram(iter_maps(locales))
            narrow = hist[1] + hist[2]
            wide = sum(count for width, count in hist.items() if width >= 5)
            assert narrow > wide, f"urban fragments too wide (seed {seed})"

    def test_occupied_counts_stay_within_setting_bounds(self):
        for seed in DRIFT_SEEDS:
            for setting, locales in generate_study(10, seed=seed).items():
                lo, hi = _OCCUPIED_BOUNDS[setting]
                for locale in locales:
                    occupied = 30 - locale.num_free
                    assert lo <= occupied <= hi, (
                        f"{locale.name} (seed {seed}) occupies {occupied} "
                        f"channels, outside {setting} bounds [{lo}, {hi}]"
                    )

    def test_settings_strictly_ordered_by_occupancy_across_seeds(self):
        for seed in DRIFT_SEEDS:
            study = generate_study(count_per_setting=10, seed=seed)
            mean_free = {
                setting: sum(loc.num_free for loc in locales) / len(locales)
                for setting, locales in study.items()
            }
            assert (
                mean_free["urban"] < mean_free["suburban"] < mean_free["rural"]
            ), f"setting occupancy ordering broke (seed {seed})"


class TestStudyShape:
    def test_study_contains_all_settings(self):
        study = generate_study(count_per_setting=3, seed=1)
        assert set(study) == set(SETTINGS)
        for locales in study.values():
            assert len(locales) == 3

    def test_locale_names_unique(self):
        locales = generate_locales("suburban", 10, seed=3)
        names = [loc.name for loc in locales]
        assert len(set(names)) == len(names)

    def test_reproducible_study(self):
        a = generate_study(count_per_setting=4, seed=11)
        b = generate_study(count_per_setting=4, seed=11)
        for setting in SETTINGS:
            assert [loc.spectrum_map for loc in a[setting]] == [
                loc.spectrum_map for loc in b[setting]
            ]
