"""Tests for TV-station and wireless-microphone incumbent models."""

import random

import pytest

from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import (
    IncumbentField,
    MicSession,
    TvStation,
    WirelessMicrophone,
    field_from_spectrum_map,
)
from repro.spectrum.spectrum_map import SpectrumMap


class TestTvStation:
    def test_detectable_at_typical_power(self):
        assert TvStation(3, power_dbm=-60.0).detectable()

    def test_below_threshold_not_detectable(self):
        assert not TvStation(3, power_dbm=-120.0).detectable()

    def test_detection_threshold_is_minus_114(self):
        assert TvStation(3, power_dbm=-114.0).detectable()
        assert not TvStation(3, power_dbm=-114.1).detectable()


class TestWirelessMicrophone:
    def test_session_activity(self):
        mic = WirelessMicrophone(5)
        mic.add_session(100.0, 200.0)
        assert not mic.active_at(99.0)
        assert mic.active_at(100.0)
        assert mic.active_at(199.9)
        assert not mic.active_at(200.0)  # half-open interval

    def test_invalid_session_raises(self):
        with pytest.raises(SpectrumMapError):
            MicSession(200.0, 100.0)

    def test_next_transition(self):
        mic = WirelessMicrophone(5)
        mic.add_session(100.0, 200.0)
        mic.add_session(500.0, 600.0)
        assert mic.next_transition_after(0.0) == 100.0
        assert mic.next_transition_after(150.0) == 200.0
        assert mic.next_transition_after(300.0) == 500.0
        assert mic.next_transition_after(700.0) is None

    def test_random_schedule_within_horizon(self):
        mic = WirelessMicrophone.random_schedule(
            3, horizon_us=3600e6, rng=random.Random(7)
        )
        for session in mic.sessions:
            assert 0 <= session.start_us <= session.end_us <= 3600e6

    def test_random_schedule_unpredictable_but_deterministic(self):
        a = WirelessMicrophone.random_schedule(3, 3600e6, random.Random(7))
        b = WirelessMicrophone.random_schedule(3, 3600e6, random.Random(7))
        assert [(s.start_us, s.end_us) for s in a.sessions] == [
            (s.start_us, s.end_us) for s in b.sessions
        ]


class TestIncumbentField:
    def test_static_tv_occupancy(self):
        field = IncumbentField(10, tv_stations=[TvStation(2), TvStation(7)])
        assert field.occupied_indices(0.0) == {2, 7}
        assert field.spectrum_map().occupied_indices() == (2, 7)

    def test_mic_appears_and_disappears(self):
        mic = WirelessMicrophone(4)
        mic.add_session(1000.0, 2000.0)
        field = IncumbentField(10, microphones=[mic])
        assert field.spectrum_map(0.0).is_free(4)
        assert field.spectrum_map(1500.0).is_occupied(4)
        assert field.spectrum_map(2500.0).is_free(4)

    def test_mic_active_on(self):
        mic = WirelessMicrophone(4)
        mic.add_session(1000.0, 2000.0)
        field = IncumbentField(10, microphones=[mic])
        assert field.mic_active_on(4, 1500.0)
        assert not field.mic_active_on(4, 500.0)
        assert not field.mic_active_on(5, 1500.0)

    def test_out_of_range_incumbent_raises(self):
        with pytest.raises(SpectrumMapError):
            IncumbentField(5, tv_stations=[TvStation(9)])
        field = IncumbentField(5)
        with pytest.raises(SpectrumMapError):
            field.add_microphone(WirelessMicrophone(5))

    def test_next_transition_tracks_all_mics(self):
        a = WirelessMicrophone(1)
        a.add_session(500.0, 700.0)
        b = WirelessMicrophone(2)
        b.add_session(300.0, 900.0)
        field = IncumbentField(5, microphones=[a, b])
        assert field.next_transition_after(0.0) == 300.0
        assert field.next_transition_after(400.0) == 500.0
        assert field.next_transition_after(750.0) == 900.0

    def test_field_from_spectrum_map_round_trips(self):
        m = SpectrumMap.from_occupied({1, 4, 9}, 12)
        field = field_from_spectrum_map(m)
        assert field.spectrum_map() == m

    def test_undetectable_mic_ignored(self):
        mic = WirelessMicrophone(2, power_dbm=-150.0)
        mic.add_session(0.0, 1e9)
        field = IncumbentField(5, microphones=[mic])
        assert field.spectrum_map(10.0).is_free(2)

    def test_mic_on_tv_channel_does_not_double_count(self):
        # Regression: a mic activating on a channel a TV station
        # already occupies must not double-count that channel in the
        # availability summaries — the occupancy set, the spectrum
        # map, and the free-channel count are all unchanged by the
        # mic's activation.
        mic = WirelessMicrophone(3)
        mic.add_session(1_000.0, 2_000.0)
        field = IncumbentField(
            10, tv_stations=[TvStation(3)], microphones=[mic]
        )
        before = field.spectrum_map(0.0)
        during = field.spectrum_map(1_500.0)
        assert field.occupied_indices(1_500.0) == {3}
        assert during == before
        assert during.num_free() == 9
        # The mic is still individually visible (the disconnection
        # trigger), even though it adds nothing to the map.
        assert field.mic_active_on(3, 1_500.0)

    def test_mic_on_tv_channel_transition_leaves_map_unchanged(self):
        # The field still schedules the mic's on/off edges; consumers
        # re-reading the map at those times must see no change.
        mic = WirelessMicrophone(3)
        mic.add_session(1_000.0, 2_000.0)
        field = IncumbentField(
            10, tv_stations=[TvStation(3)], microphones=[mic]
        )
        edge = field.next_transition_after(0.0)
        assert edge == 1_000.0
        assert field.spectrum_map(edge) == field.spectrum_map(0.0)
