"""Tests for spectrum maps and their algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SpectrumMapError
from repro.spectrum.spectrum_map import SpectrumMap, union_all

bits_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=30)


class TestConstruction:
    def test_all_free(self):
        m = SpectrumMap.all_free(10)
        assert m.num_free() == 10
        assert m.free_indices() == tuple(range(10))

    def test_all_occupied(self):
        m = SpectrumMap.all_occupied(10)
        assert m.num_free() == 0

    def test_from_occupied(self):
        m = SpectrumMap.from_occupied({1, 3}, 5)
        assert m.bits == (0, 1, 0, 1, 0)

    def test_from_free(self):
        m = SpectrumMap.from_free({0, 4}, 5)
        assert m.bits == (0, 1, 1, 1, 0)
        assert m.is_free(0) and m.is_free(4)

    def test_from_tv_channels(self):
        m = SpectrumMap.from_tv_channels([21, 51])
        assert m.is_occupied(0)
        assert m.is_occupied(29)
        assert m.num_free() == 28

    def test_empty_map_raises(self):
        with pytest.raises(SpectrumMapError):
            SpectrumMap([])

    def test_non_binary_bits_raise(self):
        with pytest.raises(SpectrumMapError):
            SpectrumMap([0, 2, 1])

    def test_out_of_range_occupied_raises(self):
        with pytest.raises(SpectrumMapError):
            SpectrumMap.from_occupied({7}, 5)


class TestQueries:
    def test_default_size_is_30(self):
        assert len(SpectrumMap.all_free()) == 30

    def test_span_is_free(self):
        m = SpectrumMap.from_occupied({3}, 10)
        assert m.span_is_free([0, 1, 2])
        assert not m.span_is_free([2, 3, 4])

    def test_equality_and_hash(self):
        a = SpectrumMap([0, 1, 0])
        b = SpectrumMap([0, 1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SpectrumMap([0, 1, 1])


class TestAlgebra:
    def test_union_is_bitwise_or(self):
        a = SpectrumMap([0, 1, 0, 0])
        b = SpectrumMap([0, 0, 1, 0])
        assert (a | b).bits == (0, 1, 1, 0)

    def test_union_size_mismatch_raises(self):
        with pytest.raises(SpectrumMapError):
            SpectrumMap([0, 1]) | SpectrumMap([0, 1, 0])

    def test_intersection(self):
        a = SpectrumMap([1, 1, 0])
        b = SpectrumMap([1, 0, 0])
        assert (a & b).bits == (1, 0, 0)

    def test_hamming_distance(self):
        a = SpectrumMap([0, 1, 0, 1])
        b = SpectrumMap([1, 1, 0, 0])
        assert a.hamming_distance(b) == 2

    def test_with_occupied_returns_new_map(self):
        a = SpectrumMap.all_free(5)
        b = a.with_occupied(2)
        assert a.is_free(2)
        assert b.is_occupied(2)

    def test_with_free(self):
        a = SpectrumMap.all_occupied(5)
        b = a.with_free(1, 3)
        assert b.free_indices() == (1, 3)

    def test_with_occupied_out_of_range_raises(self):
        with pytest.raises(SpectrumMapError):
            SpectrumMap.all_free(5).with_occupied(9)

    def test_union_all(self):
        maps = [
            SpectrumMap([0, 0, 1]),
            SpectrumMap([0, 1, 0]),
            SpectrumMap([0, 0, 0]),
        ]
        assert union_all(maps).bits == (0, 1, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(SpectrumMapError):
            union_all([])

    def test_union_all_single(self):
        m = SpectrumMap([1, 0])
        assert union_all([m]) == m


@given(bits_strategy)
def test_property_free_plus_occupied_partition(bits):
    """Free and occupied indices partition the channel set."""
    m = SpectrumMap(bits)
    free, occupied = set(m.free_indices()), set(m.occupied_indices())
    assert free | occupied == set(range(len(bits)))
    assert free & occupied == set()


@given(bits_strategy, bits_strategy)
def test_property_union_never_frees(a_bits, b_bits):
    """The OR of two maps never has more free channels than either."""
    if len(a_bits) != len(b_bits):
        return
    a, b = SpectrumMap(a_bits), SpectrumMap(b_bits)
    union = a | b
    assert union.num_free() <= min(a.num_free(), b.num_free())
    assert set(union.free_indices()) <= set(a.free_indices())


@given(bits_strategy)
def test_property_hamming_self_is_zero(bits):
    """A map has zero Hamming distance to itself."""
    m = SpectrumMap(bits)
    assert m.hamming_distance(m) == 0


@given(bits_strategy, bits_strategy)
def test_property_hamming_symmetric(a_bits, b_bits):
    """Hamming distance is symmetric."""
    if len(a_bits) != len(b_bits):
        return
    a, b = SpectrumMap(a_bits), SpectrumMap(b_bits)
    assert a.hamming_distance(b) == b.hamming_distance(a)


@given(bits_strategy, bits_strategy, bits_strategy)
def test_property_hamming_triangle_inequality(a_bits, b_bits, c_bits):
    """Hamming distance obeys the triangle inequality."""
    n = min(len(a_bits), len(b_bits), len(c_bits))
    a = SpectrumMap(a_bits[:n])
    b = SpectrumMap(b_bits[:n])
    c = SpectrumMap(c_bits[:n])
    assert a.hamming_distance(c) <= a.hamming_distance(b) + b.hamming_distance(c)


@given(bits_strategy)
def test_property_union_idempotent(bits):
    """OR-ing a map with itself is the identity."""
    m = SpectrumMap(bits)
    assert (m | m) == m
