"""Tests for spatial-variation models (Sections 2.1 and 5.4)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.spectrum.spectrum_map import SpectrumMap
from repro.spectrum.variation import (
    availability_disagreement,
    flip_map,
    generate_building_campaign,
    per_node_maps,
)


class TestFlipMap:
    def test_zero_probability_is_identity(self, py_rng):
        base = SpectrumMap.from_occupied({1, 5}, 10)
        assert flip_map(base, 0.0, py_rng) == base

    def test_probability_one_inverts(self, py_rng):
        base = SpectrumMap.from_occupied({1, 5}, 10)
        flipped = flip_map(base, 1.0, py_rng)
        assert flipped.bits == tuple(1 - b for b in base.bits)

    def test_invalid_probability_raises(self, py_rng):
        base = SpectrumMap.all_free(5)
        with pytest.raises(ValueError):
            flip_map(base, -0.1, py_rng)
        with pytest.raises(ValueError):
            flip_map(base, 1.5, py_rng)

    def test_flip_rate_matches_probability(self):
        rng = random.Random(0)
        base = SpectrumMap.all_free(30)
        flips = sum(
            flip_map(base, 0.1, rng).hamming_distance(base)
            for _ in range(200)
        )
        assert flips / (200 * 30) == pytest.approx(0.1, abs=0.02)


class TestPerNodeMaps:
    def test_count_and_size(self):
        base = SpectrumMap.all_free(30)
        maps = per_node_maps(base, 11, 0.05, seed=1)
        assert len(maps) == 11
        assert all(len(m) == 30 for m in maps)

    def test_p_zero_all_identical(self):
        base = SpectrumMap.from_occupied({3}, 10)
        maps = per_node_maps(base, 5, 0.0, seed=1)
        assert all(m == base for m in maps)

    def test_deterministic_per_seed(self):
        base = SpectrumMap.all_free(30)
        assert per_node_maps(base, 4, 0.1, seed=9) == per_node_maps(
            base, 4, 0.1, seed=9
        )

    def test_disagreement_grows_with_p(self):
        base = SpectrumMap.all_free(30)
        low = availability_disagreement(per_node_maps(base, 10, 0.01, seed=2))
        high = availability_disagreement(per_node_maps(base, 10, 0.14, seed=2))
        assert high > low


class TestBuildingCampaign:
    def test_median_hamming_near_paper_value(self):
        # Section 2.1: "the median number of channels available at one
        # point but unavailable at another is close to 7".
        medians = [
            generate_building_campaign(seed=s).median_hamming()
            for s in range(10)
        ]
        overall = sum(medians) / len(medians)
        assert 5.5 <= overall <= 8.5

    def test_nine_buildings_thirtysix_pairs(self):
        campaign = generate_building_campaign(seed=0)
        assert len(campaign.buildings) == 9
        assert len(campaign.pairwise_hamming()) == 36

    def test_deterministic(self):
        a = generate_building_campaign(seed=4)
        b = generate_building_campaign(seed=4)
        assert a.buildings == b.buildings

    def test_no_variation_when_flip_zero(self):
        campaign = generate_building_campaign(
            seed=0, local_flip_probability=0.0
        )
        assert campaign.median_hamming() == 0


class TestDisagreement:
    def test_single_map_is_zero(self):
        assert availability_disagreement([SpectrumMap.all_free(5)]) == 0.0

    def test_identical_maps_are_zero(self):
        m = SpectrumMap.from_occupied({2}, 5)
        assert availability_disagreement([m, m, m]) == 0.0

    def test_opposite_maps_are_one(self):
        a = SpectrumMap.all_free(5)
        b = SpectrumMap.all_occupied(5)
        assert availability_disagreement([a, b]) == 1.0


@given(
    st.lists(st.integers(0, 1), min_size=5, max_size=30),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=1000),
)
def test_property_flip_preserves_size(bits, p, seed):
    """Flipping never changes the map size, only its bits."""
    base = SpectrumMap(bits)
    flipped = flip_map(base, p, random.Random(seed))
    assert len(flipped) == len(base)
