"""The telemetry determinism contracts.

Three invariants, mirroring the engines' byte-identical report
contract:

* **engine parity** — scalar and vector runs of one spec produce
  *identical* metric snapshots (frontend latency buckets included);
* **off-parity** — ``telemetry=None`` leaves every report byte-identical
  to the pre-telemetry path (attaching a registry never perturbs it);
* **replay stability** — two runs of one spec export byte-identical
  JSON and Prometheus text, and parallel and sequential experiment
  execution agree snapshot-for-snapshot.
"""

from bisect import bisect_left

import pytest

from repro.telemetry import (
    MetricsRegistry,
    SpanRecorder,
    critical_path,
    path_self_times,
    snapshot_to_json,
    snapshot_to_prometheus,
    spans_to_chrome,
    spans_to_jsonl,
    trace_spans,
)
from repro.wsdb.cluster.querystorm import simulate_querystorm
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.mobility import ENGINES, simulate_roaming
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase

pytest.importorskip("numpy")

SEEDS = (3, 11, 2009)


def run_roaming(seed, engine, telemetry=None, spans=None):
    metro = generate_metro(range(0, 10), seed=seed, extent_m=3_000.0)
    return simulate_roaming(
        WhiteSpaceDatabase(metro),
        num_aps=20,
        num_clients=30,
        duration_us=4_000_000,
        tick_us=100_000,
        seed=seed,
        mic_events=2,
        engine=engine,
        telemetry=telemetry,
        spans=spans,
    )


def run_querystorm(seed, engine, telemetry=None, spans=None):
    # burst_size below one tick's storm load, so admission sheds and
    # deferred re-checks populate the latency histogram's tail.
    metro = generate_metro(range(0, 10), seed=seed, extent_m=3_000.0)
    return simulate_querystorm(
        ShardRouter(metro, num_shards=4),
        num_aps=20,
        num_clients=30,
        duration_us=4_000_000,
        tick_us=100_000,
        seed=seed,
        offered_qps=100.0,
        rate_limit_qps=110.0,
        burst_size=15,
        push=True,
        mic_events=2,
        engine=engine,
        telemetry=telemetry,
        spans=spans,
    )


class TestEngineParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_roaming_snapshots_identical(self, seed):
        snaps = [
            run_roaming(seed, engine, MetricsRegistry())["telemetry"]
            for engine in ENGINES
        ]
        assert snaps[0] == snaps[1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_querystorm_snapshots_identical(self, seed):
        snaps = [
            run_querystorm(seed, engine, MetricsRegistry())["telemetry"]
            for engine in ENGINES
        ]
        assert snaps[0] == snaps[1]

    def test_latency_histogram_has_deferred_tail(self):
        # The parity above must not be vacuous: under this rate limit
        # some re-checks defer and later serve, so the latency
        # histogram carries nonzero observations in both engines.
        snap = run_querystorm(11, "vector", MetricsRegistry())["telemetry"]
        hist = snap["histograms"]["frontend_latency_us"]
        overflow = sum(hist["counts"][1:])
        assert hist["count"] > 0
        assert overflow > 0, "no deferred re-check ever served"


class TestOffParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_roaming_report_unchanged(self, engine):
        plain = run_roaming(3, engine)
        with_null = run_roaming(3, engine, telemetry=None)
        assert "telemetry" not in plain
        assert plain == with_null

    @pytest.mark.parametrize("engine", ENGINES)
    def test_querystorm_report_unchanged_modulo_snapshot(self, engine):
        plain = run_querystorm(3, engine)
        observed = run_querystorm(3, engine, telemetry=MetricsRegistry())
        assert "telemetry" not in plain
        snapshot = observed.pop("telemetry")
        assert snapshot["counters"]
        assert observed == plain


class TestSpanParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_querystorm_span_exports_byte_identical(self, seed):
        tables = [
            run_querystorm(seed, engine, spans=SpanRecorder())["spans"]
            for engine in ENGINES
        ]
        assert spans_to_jsonl(tables[0]) == spans_to_jsonl(tables[1])
        assert spans_to_chrome(tables[0]) == spans_to_chrome(tables[1])
        assert tables[0]["traces"] > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_roaming_span_exports_byte_identical(self, seed):
        tables = [
            run_roaming(seed, engine, spans=SpanRecorder())["spans"]
            for engine in ENGINES
        ]
        assert spans_to_jsonl(tables[0]) == spans_to_jsonl(tables[1])
        assert tables[0]["traces"] > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_spans_off_report_unchanged(self, engine):
        plain = run_querystorm(3, engine)
        observed = run_querystorm(3, engine, spans=SpanRecorder())
        assert "spans" not in plain
        table = observed.pop("spans")
        assert table["traces"] > 0
        assert observed == plain

    def test_exemplars_resolve_and_critical_path_sums_to_latency(self):
        # The acceptance bar: for a storm that sheds, every exemplar
        # trace id in every latency bucket (the p99 bucket included)
        # resolves to a recorded span tree whose critical-path self
        # times sum exactly to the request's observed latency.
        table = run_querystorm(11, "vector", spans=SpanRecorder())["spans"]
        bounds = table["latency_bounds"]
        assert sum(table["latency_counts"][1:]) > 0, "storm never shed"
        assert table["exemplars"]
        checked = 0
        for ids in table["exemplars"].values():
            for tid in ids:
                spans = trace_spans(table, tid)
                assert spans, f"exemplar {tid} has no recorded tree"
                root = spans[0]
                latency = root["attrs"]["latency_us"]
                self_times = path_self_times(critical_path(spans))
                assert sum(t for _, t in self_times) == latency
                checked += 1
        assert checked > 0
        # The deferred tail is represented: some exemplar beyond the
        # first bucket exists, and its bucket matches its latency.
        tails = {
            label: ids
            for label, ids in table["exemplars"].items()
            if label != "le_0" and ids
        }
        assert tails, "no tail-bucket exemplar recorded"
        for label, ids in tails.items():
            for tid in ids:
                root = trace_spans(table, tid)[0]
                bucket = bisect_left(bounds, root["attrs"]["latency_us"])
                from repro.telemetry.spans import bucket_label

                assert bucket_label(bounds, bucket) == label

    def test_head_sampling_subsets_the_full_table(self):
        full = run_querystorm(11, "vector", spans=SpanRecorder())["spans"]
        sampled = run_querystorm(
            11, "vector", spans=SpanRecorder(sample="head-4")
        )["spans"]
        assert sampled["latency_counts"] == full["latency_counts"]
        assert 0 < sampled["traces"] < full["traces"]
        assert sampled["dropped"] == full["traces"] - sampled["traces"]
        full_ids = {s["trace"] for s in full["spans"]}
        for span in sampled["spans"]:
            assert span["trace"] in full_ids


class TestReplayStability:
    def test_exports_byte_identical_across_runs(self):
        a = run_querystorm(2009, "vector", MetricsRegistry())["telemetry"]
        b = run_querystorm(2009, "vector", MetricsRegistry())["telemetry"]
        assert snapshot_to_json(a) == snapshot_to_json(b)
        assert snapshot_to_prometheus(a) == snapshot_to_prometheus(b)

    def test_parallel_and_sequential_snapshots_agree(self):
        from repro.experiments import (
            ExperimentSpec,
            ParallelRunner,
            ScenarioSpec,
        )

        spec = ExperimentSpec(
            scenario=ScenarioSpec(
                free_indices=(1, 3, 5),
                num_channels=12,
                duration_us=2_000_000.0,
                seed=5,
            ),
            kind="querystorm",
            citywide_aps=10,
            citywide_extent_km=2.0,
            roaming_clients=10,
            storm_shards=4,
            storm_offered_qps=50.0,
            storm_rate_limit_qps=40.0,
            telemetry="on",
        )
        seeds = (1, 2)
        parallel = ParallelRunner(max_workers=2).run_grid(spec, seeds)
        sequential = ParallelRunner(max_workers=0).run_grid(spec, seeds)
        for p, s in zip(parallel, sequential):
            assert p.to_json() == s.to_json()
            assert "telemetry" in dict(dict(p.metrics))
