"""Unit tests for the deterministic snapshot exporters."""

import json

import pytest

from repro.errors import SimulationError
from repro.telemetry import (
    MetricsRegistry,
    snapshot_to_json,
    snapshot_to_prometheus,
    write_metrics,
    write_series_npz,
)


def sample_snapshot() -> dict:
    reg = MetricsRegistry()
    reg.counter("wsdb_queries").inc(7)
    reg.counter("wsdb_queries", shard=0).inc(3)
    reg.counter("wsdb_queries", shard=1).inc(4)
    reg.gauge("wsdb_hit_rate").set(0.25)
    h = reg.histogram("frontend_latency_us", (10.0, 100.0))
    for v in (5.0, 50.0, 500.0):
        h.observe(v)
    reg.sample_tick(0.0, queries=2)
    reg.sample_tick(1_000_000.0, queries=7)
    return reg.snapshot()


class TestJson:
    def test_canonical_and_stable(self):
        snap = sample_snapshot()
        text = snapshot_to_json(snap)
        assert text == snapshot_to_json(sample_snapshot())
        assert text.endswith("\n")
        assert json.loads(text) == snap


class TestPrometheus:
    def test_rendering(self):
        text = snapshot_to_prometheus(sample_snapshot())
        lines = text.splitlines()
        # One TYPE line per base name, even with labeled variants.
        assert lines.count("# TYPE wsdb_queries counter") == 1
        assert "wsdb_queries 7" in lines
        assert 'wsdb_queries{shard="0"} 3' in lines
        assert 'wsdb_queries{shard="1"} 4' in lines
        assert "wsdb_hit_rate 0.25" in lines
        # Histogram: cumulative le buckets, +Inf, sum, count.
        assert 'frontend_latency_us_bucket{le="10"} 1' in lines
        assert 'frontend_latency_us_bucket{le="100"} 2' in lines
        assert 'frontend_latency_us_bucket{le="+Inf"} 3' in lines
        assert "frontend_latency_us_sum 555" in lines
        assert "frontend_latency_us_count 3" in lines

    def test_labeled_histogram_carries_labels_into_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("lat", (1.0,), shard=2).observe(0.5)
        lines = snapshot_to_prometheus(reg.snapshot()).splitlines()
        assert 'lat_bucket{shard="2",le="1"} 1' in lines
        assert 'lat_sum{shard="2"} 0.5' in lines
        assert 'lat_count{shard="2"} 1' in lines

    def test_stable_across_renders(self):
        assert snapshot_to_prometheus(sample_snapshot()) == snapshot_to_prometheus(
            sample_snapshot()
        )

    def test_empty_snapshot_renders_empty(self):
        assert snapshot_to_prometheus(MetricsRegistry().snapshot()) == ""


class TestWriters:
    def test_write_metrics_both_paths(self, tmp_path):
        snap = sample_snapshot()
        jp = tmp_path / "m" / "snap.json"
        pp = tmp_path / "m" / "snap.prom"
        write_metrics(snap, json_path=jp, prom_path=pp)
        assert json.loads(jp.read_text()) == snap
        assert pp.read_text() == snapshot_to_prometheus(snap)

    def test_write_series_npz_roundtrip(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.traces.columnar import read_columns_npz

        snap = sample_snapshot()
        out = tmp_path / "series.npz"
        write_series_npz(snap, out)
        meta, columns = read_columns_npz(out)
        assert meta == {"source": "repro.telemetry"}
        assert columns["queries"].tolist() == [2.0, 7.0]
        assert columns["t_us"].tolist() == [0.0, 1_000_000.0]

    def test_write_series_npz_requires_series(self, tmp_path):
        pytest.importorskip("numpy")
        with pytest.raises(SimulationError):
            write_series_npz(MetricsRegistry().snapshot(), tmp_path / "x.npz")
