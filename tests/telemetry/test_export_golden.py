"""Golden-byte pins for the metric exporters, plus merge edge cases.

The determinism contract promises *byte*-identical artifacts, so these
tests pin the exact exporter output for a small fixed registry — any
formatting drift (float rendering, key order, `# TYPE` placement,
separator choice) fails here before it silently invalidates recorded
artifacts.  Alongside: the `merge_snapshots` edge cases the parallel
runner depends on — an empty snapshot list, histograms that exist in
only one input, and the gauge max on a tie.
"""

from repro.telemetry import (
    MetricsRegistry,
    merge_snapshots,
    snapshot_to_json,
    snapshot_to_prometheus,
)


def fixed_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("wsdb_queries_total", shard="0").inc(3)
    reg.counter("wsdb_queries_total", shard="1").inc()
    reg.counter("push_notifications_total").inc(2)
    reg.gauge("frontend_queue_depth").set(4.0)
    hist = reg.histogram("frontend_latency_us", bounds=(100.0, 1_000.0))
    for value in (50.0, 150.0, 5_000.0):
        hist.observe(value)
    reg.sample_tick(0.0, served=1.0)
    reg.sample_tick(100.0, served=3.0)
    return reg


GOLDEN_JSON = (
    '{"counters":{"push_notifications_total":2,'
    '"wsdb_queries_total{shard=\\"0\\"}":3,'
    '"wsdb_queries_total{shard=\\"1\\"}":1},'
    '"gauges":{"frontend_queue_depth":4.0},'
    '"histograms":{"frontend_latency_us":{"bounds":[100.0,1000.0],'
    '"count":3,"counts":[1,1,1],"sum":5200.0}},'
    '"series":{"served":[1.0,3.0],"t_us":[0.0,100.0]}}\n'
)

GOLDEN_PROM = """\
# TYPE push_notifications_total counter
push_notifications_total 2
# TYPE wsdb_queries_total counter
wsdb_queries_total{shard="0"} 3
wsdb_queries_total{shard="1"} 1
# TYPE frontend_queue_depth gauge
frontend_queue_depth 4
# TYPE frontend_latency_us histogram
frontend_latency_us_bucket{le="100"} 1
frontend_latency_us_bucket{le="1000"} 2
frontend_latency_us_bucket{le="+Inf"} 3
frontend_latency_us_sum 5200
frontend_latency_us_count 3
"""


class TestGoldenBytes:
    def test_json_exact(self):
        assert snapshot_to_json(fixed_registry().snapshot()) == GOLDEN_JSON

    def test_prometheus_exact(self):
        assert (
            snapshot_to_prometheus(fixed_registry().snapshot())
            == GOLDEN_PROM
        )

    def test_empty_snapshot_renders_empty(self):
        empty = MetricsRegistry().snapshot()
        assert snapshot_to_prometheus(empty) == ""
        assert (
            snapshot_to_json(empty)
            == '{"counters":{},"gauges":{},"histograms":{},"series":{}}\n'
        )


class TestMergeEdgeCases:
    def test_empty_snapshot_list(self):
        assert merge_snapshots() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }

    def test_disjoint_histograms_pass_through(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat_a", bounds=(1.0,)).observe(0.5)
        b.histogram("lat_b", bounds=(2.0, 4.0)).observe(3.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert sorted(merged["histograms"]) == ["lat_a", "lat_b"]
        assert merged["histograms"]["lat_a"] == {
            "bounds": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }
        assert merged["histograms"]["lat_b"] == {
            "bounds": [2.0, 4.0],
            "counts": [0, 1, 0],
            "sum": 3.0,
            "count": 1,
        }

    def test_gauge_max_tie(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(7.0)
        b.gauge("depth").set(7.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["gauges"] == {"depth": 7.0}

    def test_merge_is_byte_stable_through_the_exporters(self):
        merged = merge_snapshots(
            fixed_registry().snapshot(), MetricsRegistry().snapshot()
        )
        assert snapshot_to_json(merged) == GOLDEN_JSON
        assert snapshot_to_prometheus(merged) == GOLDEN_PROM
