"""Unit tests for the sim-clock metrics registry."""

import pytest

from repro.errors import SimulationError
from repro.telemetry import (
    DEFAULT_BATCH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS_US,
    Histogram,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullTelemetry,
    TELEMETRY_MODES,
    histogram_quantile,
    merge_snapshots,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("wsdb_queries", {}) == "wsdb_queries"

    def test_labels_render_sorted(self):
        key = metric_key("wsdb_queries", {"shard": 3, "az": "x"})
        assert key == 'wsdb_queries{az="x",shard="3"}'

    def test_label_order_is_canonical(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key(
            "m", {"b": 2, "a": 1}
        )

    @pytest.mark.parametrize("bad", ["", "1starts_with_digit", "has space", "a-b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(SimulationError):
            metric_key(bad, {})


class TestFamilies:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.snapshot()["counters"]["hits"] == 5
        with pytest.raises(SimulationError):
            reg.counter("hits").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3.0)
        reg.gauge("depth").set(1.5)
        assert reg.snapshot()["gauges"]["depth"] == 1.5

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("q", shard=0).inc(2)
        reg.counter("q", shard=1).inc(3)
        reg.counter("q").inc(5)
        counters = reg.snapshot()["counters"]
        assert counters == {'q': 5, 'q{shard="0"}': 2, 'q{shard="1"}': 3}

    def test_histogram_bucket_edges_are_inclusive(self):
        h = Histogram((10.0, 20.0))
        for v in (0.0, 10.0, 10.1, 20.0, 21.0):
            h.observe(v)
        # le=10 catches 0.0 and 10.0; le=20 catches 10.1 and 20.0;
        # overflow catches 21.0.
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(61.1)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(SimulationError):
            Histogram((1.0, 1.0))
        with pytest.raises(SimulationError):
            Histogram((2.0, 1.0))
        with pytest.raises(SimulationError):
            Histogram(())

    def test_histogram_redeclare_same_bounds_ok_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", DEFAULT_LATENCY_BOUNDS_US).observe(1.0)
        # Re-fetch without bounds, and with identical bounds: fine.
        assert reg.histogram("lat").count == 1
        assert reg.histogram("lat", DEFAULT_LATENCY_BOUNDS_US).count == 1
        with pytest.raises(SimulationError):
            reg.histogram("lat", DEFAULT_BATCH_BOUNDS)


class TestQuantile:
    def test_empty_histogram_reports_zero(self):
        snap = Histogram((1.0, 2.0))
        data = {"bounds": snap.bounds, "counts": snap.counts, "count": 0}
        assert histogram_quantile(data, 0.5) == 0.0

    def test_quantiles_walk_cumulative_counts(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in [0.5] * 50 + [1.5] * 40 + [3.0] * 9 + [100.0]:
            h.observe(v)
        data = {"bounds": h.bounds, "counts": h.counts, "count": h.count}
        assert histogram_quantile(data, 0.5) == 1.0
        assert histogram_quantile(data, 0.9) == 2.0
        assert histogram_quantile(data, 0.99) == 4.0
        assert histogram_quantile(data, 1.0) == float("inf")

    def test_out_of_range_q_rejected(self):
        data = {"bounds": (1.0,), "counts": [0, 0], "count": 0}
        with pytest.raises(SimulationError):
            histogram_quantile(data, -0.1)
        with pytest.raises(SimulationError):
            histogram_quantile(data, 1.1)


class TestRecordStats:
    def test_ints_become_counters_floats_become_gauges(self):
        reg = MetricsRegistry()
        reg.record_stats(
            "wsdb",
            {"queries": 7, "hit_rate": 0.5, "name": "ignored", "flag": True},
        )
        snap = reg.snapshot()
        assert snap["counters"] == {"wsdb_queries": 7, "wsdb_flag": 1}
        assert snap["gauges"] == {"wsdb_hit_rate": 0.5}


class TestSampleTick:
    def test_columns_fixed_by_first_call(self):
        reg = MetricsRegistry()
        reg.sample_tick(0.0, a=1, b=2)
        reg.sample_tick(10.0, b=4, a=3)  # kwarg order is irrelevant
        snap = reg.snapshot()["series"]
        assert snap == {"t_us": [0.0, 10.0], "a": [1.0, 3.0], "b": [2.0, 4.0]}

    def test_column_drift_rejected(self):
        reg = MetricsRegistry()
        reg.sample_tick(0.0, a=1)
        with pytest.raises(SimulationError):
            reg.sample_tick(10.0, a=1, b=2)

    def test_values_coerce_to_float(self):
        numpy = pytest.importorskip("numpy")
        reg = MetricsRegistry()
        reg.sample_tick(0.0, n=numpy.int64(3))
        value = reg.snapshot()["series"]["n"][0]
        assert type(value) is float and value == 3.0


class TestSnapshotShape:
    def test_sections_sorted_and_plain(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h", (1.0,)).observe(0.5)
        reg.sample_tick(0.0, x=1)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms", "series"]
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # plain data end to end

    def test_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc(10)
        assert snap["counters"]["c"] == 1


class TestMerge:
    def test_counters_sum_gauges_take_max(self):
        a = {"counters": {"q": 2}, "gauges": {"depth": 1.0}}
        b = {"counters": {"q": 3, "r": 1}, "gauges": {"depth": 0.5}}
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"q": 5, "r": 1}
        assert merged["gauges"] == {"depth": 1.0}

    def test_histograms_merge_bucketwise(self):
        h = {"bounds": [1.0, 2.0], "counts": [1, 0, 2], "sum": 9.0, "count": 3}
        merged = merge_snapshots({"histograms": {"h": h}}, {"histograms": {"h": h}})
        assert merged["histograms"]["h"] == {
            "bounds": [1.0, 2.0],
            "counts": [2, 0, 4],
            "sum": 18.0,
            "count": 6,
        }

    def test_histogram_bounds_mismatch_raises(self):
        a = {"histograms": {"h": {"bounds": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}}}
        b = {"histograms": {"h": {"bounds": [2.0], "counts": [0, 0], "sum": 0.0, "count": 0}}}
        with pytest.raises(SimulationError):
            merge_snapshots(a, b)

    def test_overlapping_series_raise_but_t_us_is_exempt(self):
        a = {"series": {"t_us": [0.0], "x": [1.0]}}
        b = {"series": {"t_us": [0.0], "y": [2.0]}}
        merged = merge_snapshots(a, b)
        assert set(merged["series"]) == {"t_us", "x", "y"}
        with pytest.raises(SimulationError):
            merge_snapshots(a, a)


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        NULL_TELEMETRY.counter("x", shard=1).inc(5)
        NULL_TELEMETRY.gauge("g").set(2.0)
        NULL_TELEMETRY.histogram("h", (1.0,)).observe(9.0)
        NULL_TELEMETRY.record_stats("p", {"a": 1})
        NULL_TELEMETRY.sample_tick(0.0, a=1)
        assert NULL_TELEMETRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }

    def test_modes_tuple(self):
        assert TELEMETRY_MODES == ("off", "on")
