"""Unit tests for the wall-clock phase profiler."""

import json

from repro.telemetry import NULL_PROFILER, NullProfiler, PhaseProfiler


class FakeClock:
    """A deterministic perf_counter stand-in: each read advances 1 s."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestPhaseProfiler:
    def test_phase_accumulates_across_entries(self):
        prof = PhaseProfiler(clock=FakeClock())
        with prof.phase("advance"):
            pass
        with prof.phase("advance"):
            pass
        with prof.phase("associate"):
            pass
        assert prof.seconds() == {"advance": 2.0, "associate": 1.0}
        assert prof.report() == {
            "advance": {"seconds": 2.0, "calls": 2},
            "associate": {"seconds": 1.0, "calls": 1},
        }

    def test_phase_records_even_on_exception(self):
        prof = PhaseProfiler(clock=FakeClock())
        try:
            with prof.phase("boom"):
                raise RuntimeError("mid-phase")
        except RuntimeError:
            pass
        assert prof.report()["boom"]["calls"] == 1

    def test_seconds_sorted_by_name(self):
        prof = PhaseProfiler(clock=FakeClock())
        prof.add("zeta", 1.0)
        prof.add("alpha", 2.0)
        assert list(prof.seconds()) == ["alpha", "zeta"]

    def test_write_artifact(self, tmp_path):
        prof = PhaseProfiler(clock=FakeClock())
        with prof.phase("advance"):
            pass
        out = prof.write(tmp_path / "deep" / "run.profile.json", meta={"k": 1})
        payload = json.loads(out.read_text())
        assert payload["meta"] == {"k": 1}
        assert payload["phases"]["advance"] == {"seconds": 1.0, "calls": 1}

    def test_write_chrome_artifact(self, tmp_path):
        prof = PhaseProfiler(clock=FakeClock())
        prof.add("batch-lookup", 2.0)
        prof.add("advance", 1.0)
        out = prof.write_chrome(
            tmp_path / "run.profile-chrome.json", meta={"kind": "roaming"}
        )
        payload = json.loads(out.read_text())
        assert payload["metadata"] == {"kind": "roaming"}
        events = payload["traceEvents"]
        # One complete event per phase, head-to-tail in name order.
        assert [e["name"] for e in events] == ["advance", "batch-lookup"]
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["ts"] == 0.0
        assert events[0]["dur"] == 1e6
        assert events[1]["ts"] == 1e6
        assert events[1]["dur"] == 2e6
        assert events[1]["args"] == {"calls": 1, "seconds": 2.0}

    def test_real_clock_measures_nonnegative(self):
        prof = PhaseProfiler()
        with prof.phase("p"):
            sum(range(1000))
        assert prof.seconds()["p"] >= 0.0


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        with NULL_PROFILER.phase("anything"):
            pass
        NULL_PROFILER.add("x", 1.0)
        assert NULL_PROFILER.seconds() == {}
        assert NULL_PROFILER.report() == {}

    def test_phase_context_is_reusable(self):
        # The shared nullcontext must survive nested and repeated use.
        with NULL_PROFILER.phase("a"):
            with NULL_PROFILER.phase("b"):
                pass
        with NULL_PROFILER.phase("a"):
            pass
