"""Unit tests for the sim-clock span recorder and its analysis helpers.

Covers the recorder lifecycle (begin / defer / serve, one-shot trees),
deterministic trace ids, sampling modes, exemplar links, snapshot
ordering, the critical-path / self-time invariant, tail attribution,
and the two span exporters' round-trip properties.
"""

import json

import pytest

from repro.errors import SimulationError
from repro.telemetry import (
    NULL_SPANS,
    SpanRecorder,
    critical_path,
    lookup_steps,
    parse_span_sample,
    path_self_times,
    spans_to_chrome,
    spans_to_jsonl,
    tail_attribution,
    trace_spans,
)
from repro.telemetry.spans import (
    EXEMPLARS_PER_BUCKET,
    SPANS_SCHEMA,
    _trace_id,
    bucket_label,
)

BOUNDS = (100.0, 1_000.0, 10_000.0)


def serve_one(rec, subject=7, enqueue=1_000.0, serve=3_500.0, defers=()):
    """One full request lifecycle with a shard cache-miss serve."""
    tid = rec.request_begin("storm", subject, enqueue)
    for t in defers:
        rec.request_defer(tid, t)
    rec.request_serve(
        tid,
        serve,
        "frontend",
        [
            ("admission", "frontend", {}, ()),
            lookup_steps(False, 12, "shard0", shard=True),
        ],
    )
    return tid


class TestTraceIds:
    def test_content_derived(self):
        assert _trace_id("storm", 7, 100.0) == _trace_id("storm", 7, 100.0)
        assert _trace_id("storm", 7, 100.0) != _trace_id("storm", 8, 100.0)
        assert _trace_id("storm", 7, 100.0) != _trace_id("storm", 7, 200.0)

    def test_two_recorders_mint_identical_ids(self):
        a, b = SpanRecorder(), SpanRecorder()
        assert serve_one(a) == serve_one(b)

    def test_defer_retry_lands_in_same_trace(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        first = rec.request_begin("recheck", 3, 500.0)
        rec.request_defer(first, 500.0)
        # The retry carries its first-attempt enqueue stamp.
        again = rec.request_begin("recheck", 3, 500.0)
        assert again == first
        rec.request_serve(first, 900.0, "frontend", [])
        spans = trace_spans(rec.snapshot(), first)
        defers = [s for s in spans if s["kind"] == "shed_defer"]
        assert [s["t0_us"] for s in defers] == [500.0]


class TestRecorderLifecycle:
    def test_serve_builds_the_documented_tree(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        tid = serve_one(rec, defers=(1_000.0, 2_000.0))
        spans = trace_spans(rec.snapshot(), tid)
        kinds = [s["kind"] for s in spans]
        assert kinds == [
            "request",
            "queue_wait",
            "shed_defer",
            "shed_defer",
            "admission",
            "shard_lookup",
            "db_lookup",
            "cache_miss",
            "index_scan",
        ]
        root = spans[0]
        assert root["parent"] is None
        assert root["attrs"] == {
            "req": "storm",
            "subject": 7,
            "latency_us": 2_500.0,
        }
        assert (root["t0_us"], root["t1_us"]) == (1_000.0, 3_500.0)
        # Parents reference earlier span ids (preorder).
        for span in spans[1:]:
            assert span["parent"] < span["span"]
        scan = spans[-1]
        assert scan["attrs"] == {"candidates": 12}

    def test_unserved_requests_are_counted_not_exported(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        rec.request_begin("storm", 1, 0.0)
        table = rec.snapshot()
        assert table["unserved"] == 1
        assert table["traces"] == 0
        assert table["spans"] == []

    def test_serve_without_begin_is_a_noop(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        assert rec.request_serve("feedface00000000", 10.0, "frontend", []) is False
        assert rec.snapshot()["traces"] == 0

    def test_record_tree_zero_duration(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        tid = rec.record_tree(
            "mic_register",
            "mic",
            0,
            4_000.0,
            "frontend",
            [
                ("invalidate", "frontend", {"entries": 3}, ()),
                ("push_fanout", "push", {"notified": 5}, ()),
            ],
        )
        spans = trace_spans(rec.snapshot(), tid)
        assert [s["kind"] for s in spans] == [
            "mic_register",
            "invalidate",
            "push_fanout",
        ]
        assert all(s["t0_us"] == s["t1_us"] == 4_000.0 for s in spans)
        # Zero-duration trees never enter the request latency counts.
        assert sum(rec.snapshot()["latency_counts"]) == 0

    def test_snapshot_orders_by_start_then_trace_id(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        late = serve_one(rec, subject=1, enqueue=5_000.0, serve=5_100.0)
        early = serve_one(rec, subject=2, enqueue=100.0, serve=200.0)
        table = rec.snapshot()
        roots = [s for s in table["spans"] if s["parent"] is None]
        assert [r["trace"] for r in roots] == [early, late]
        assert table["schema"] == SPANS_SCHEMA

    def test_null_spans_is_inert(self):
        assert NULL_SPANS.enabled is False
        tid = NULL_SPANS.request_begin("storm", 1, 0.0)
        NULL_SPANS.request_defer(tid, 0.0)
        assert NULL_SPANS.request_serve(tid, 1.0, "frontend", []) is False
        assert NULL_SPANS.record_tree("x", "x", 0, 0.0, "s", []) == ""
        assert NULL_SPANS.snapshot()["spans"] == []


class TestSampling:
    def test_parse_modes(self):
        assert parse_span_sample(None) == ("off",)
        assert parse_span_sample("off") == ("off",)
        assert parse_span_sample("tail") == ("tail",)
        assert parse_span_sample("head-4") == ("head", 4)

    @pytest.mark.parametrize(
        "bad", ["head-0", "head-x", "head-", "maybe", "tail-2"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(SimulationError, match="span_sample"):
            parse_span_sample(bad)

    def test_head_sampling_is_deterministic_and_counts_everything(self):
        n = 3
        kept_ids = []
        rec = SpanRecorder(sample=f"head-{n}", latency_bounds=BOUNDS)
        for subject in range(30):
            tid = serve_one(rec, subject=subject)
            if int(tid[:8], 16) % n == 0:
                kept_ids.append(tid)
        table = rec.snapshot()
        assert table["traces"] == len(kept_ids)
        assert table["dropped"] == 30 - len(kept_ids)
        # Latency counts are sampling-immune: all 30 serves counted.
        assert sum(table["latency_counts"]) == 30
        exported = {s["trace"] for s in table["spans"]}
        assert exported == set(kept_ids)

    def test_tail_sampling_keeps_only_slow_traces(self):
        rec = SpanRecorder(sample="tail", latency_bounds=BOUNDS)
        instant = serve_one(rec, subject=1, enqueue=100.0, serve=100.0)
        slow = serve_one(rec, subject=2, enqueue=100.0, serve=900.0)
        table = rec.snapshot()
        assert trace_spans(table, instant) == []
        assert trace_spans(table, slow) != []
        assert table["dropped"] == 1
        assert sum(table["latency_counts"]) == 2


class TestExemplars:
    def test_bucket_labels(self):
        assert bucket_label(BOUNDS, 0) == "le_100"
        assert bucket_label(BOUNDS, 2) == "le_10000"
        assert bucket_label(BOUNDS, 3) == "le_inf"

    def test_first_n_distinct_per_bucket(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        ids = [
            serve_one(rec, subject=s, enqueue=0.0, serve=50.0)
            for s in range(EXEMPLARS_PER_BUCKET + 3)
        ]
        table = rec.snapshot()
        assert table["exemplars"] == {
            "le_100": ids[:EXEMPLARS_PER_BUCKET]
        }

    def test_every_exemplar_resolves(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        for s in range(6):
            serve_one(rec, subject=s, enqueue=0.0, serve=float(s) * 400.0)
        table = rec.snapshot()
        assert table["exemplars"]
        for ids in table["exemplars"].values():
            for tid in ids:
                assert trace_spans(table, tid)


class TestAnalysis:
    def test_critical_path_follows_longest_child(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        tid = serve_one(rec, defers=(1_500.0,))
        spans = trace_spans(rec.snapshot(), tid)
        path = critical_path(spans)
        # queue_wait spans the whole window; the serve-side steps are
        # zero-duration, so the wait wins at the root.
        assert [s["kind"] for s in path][:2] == ["request", "queue_wait"]

    def test_critical_path_tie_breaks_to_lowest_span_id(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        tid = rec.record_tree(
            "request",
            "roam",
            1,
            100.0,
            "db",
            [("a", "db", {}, ()), ("b", "db", {}, ())],
        )
        path = critical_path(trace_spans(rec.snapshot(), tid))
        assert [s["kind"] for s in path] == ["request", "a"]

    def test_self_times_sum_to_root_duration(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        tid = serve_one(rec, enqueue=1_000.0, serve=9_999.0, defers=(2_000.0,))
        spans = trace_spans(rec.snapshot(), tid)
        path = critical_path(spans)
        self_times = path_self_times(path)
        assert sum(t for _, t in self_times) == pytest.approx(
            spans[0]["attrs"]["latency_us"]
        )

    def test_tail_attribution_charges_the_slow_kind(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        for s in range(98):
            serve_one(rec, subject=s, enqueue=0.0, serve=10.0)
        serve_one(rec, subject=998, enqueue=0.0, serve=5_000.0)
        serve_one(rec, subject=999, enqueue=0.0, serve=6_000.0)
        tail = tail_attribution(rec.snapshot())
        assert tail["requests"] == 2
        assert tail["traces"] == 2
        assert tail["threshold_le"] == 10_000.0
        assert tail["by_kind"]["queue_wait"] == 11_000.0

    def test_tail_attribution_empty_table(self):
        tail = tail_attribution(SpanRecorder(latency_bounds=BOUNDS).snapshot())
        assert tail == {
            "quantile": 0.99,
            "threshold_le": None,
            "requests": 0,
            "traces": 0,
            "by_kind": {},
        }


class TestExporters:
    def make_table(self):
        rec = SpanRecorder(latency_bounds=BOUNDS)
        serve_one(rec, subject=1, defers=(1_200.0,))
        serve_one(rec, subject=2, enqueue=4_000.0, serve=4_100.0)
        rec.record_tree(
            "mic_register",
            "mic",
            0,
            5_000.0,
            "frontend",
            [("invalidate", "frontend", {"entries": 1}, ())],
        )
        return rec.snapshot()

    def test_jsonl_round_trips_the_table(self):
        table = self.make_table()
        text = spans_to_jsonl(table)
        lines = text.splitlines()
        meta = json.loads(lines[0])
        rebuilt = dict(meta)
        rebuilt["spans"] = [json.loads(line) for line in lines[1:]]
        assert rebuilt == table

    def test_jsonl_is_byte_stable(self):
        assert spans_to_jsonl(self.make_table()) == spans_to_jsonl(
            self.make_table()
        )

    def test_chrome_events_cover_every_span(self):
        table = self.make_table()
        payload = json.loads(spans_to_chrome(table))
        events = payload["traceEvents"]
        assert len(events) == len(table["spans"])
        assert all(e["ph"] == "X" for e in events)
        # One tid lane per trace, numbered in first-appearance order.
        lanes = {}
        for span, event in zip(table["spans"], events):
            lanes.setdefault(span["trace"], event["tid"])
            assert event["tid"] == lanes[span["trace"]]
            assert event["args"]["trace"] == span["trace"]
        assert sorted(lanes.values()) == list(range(1, len(lanes) + 1))
