"""Row-schema validation tests for ``scripts/bench_trend.py``.

The trend checker validates every trajectory entry against the exact
key sets ``benchmarks/bench_scale.py`` writes before comparing any two
entries, so a drifted writer fails loudly at the first CI run.  The
script is stdlib-only and lives outside the package; load it by path.
"""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "scripts" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trend)


def measured_run(**overrides) -> dict:
    run = {
        "engine": "vector",
        "clients": 1000,
        "ticks": 100,
        "wall_s": 1.5,
        "client_ticks": 100_000,
        "clients_per_sec": 66_666.7,
        "ticks_per_sec": 66.7,
        "peak_rss_kb": 120_000,
    }
    run.update(overrides)
    return run


def entry(**overrides) -> dict:
    base = {
        "created": "2026-08-08T00:00:00Z",
        "version": "1.7.0",
        "smoke": False,
        "duration_us": 10_000_000.0,
        "runs": [measured_run()],
        "speedup_vs_scalar": 12.0,
        "headline_clients": 1000,
        "headline_clients_per_sec": 66_666.7,
    }
    base.update(overrides)
    return base


class TestValidEntries:
    def test_measured_run_passes(self):
        bench_trend.validate_entry(entry(), 0)

    def test_optional_phases_key_accepted(self):
        run = measured_run(phases={"advance": 0.1, "batch-lookup": 0.9})
        bench_trend.validate_entry(entry(runs=[run]), 0)

    def test_optional_host_key_accepted(self):
        # Entries predating the host stamp stay valid without it.
        bench_trend.validate_entry(entry(host="ci-runner-3"), 0)
        bench_trend.validate_entry(entry(), 0)

    def test_skipped_stub_row_passes(self):
        stub = {"engine": "vector", "clients": 100_000, "skipped": "budget"}
        bench_trend.validate_entry(entry(runs=[measured_run(), stub]), 0)

    def test_validate_log_walks_all_entries(self):
        bench_trend.validate_log([entry(), entry()])

    def test_observability_row_accepted(self):
        obs = {
            "clients": 1000,
            "observed_wall_s": 1.9,
            "plain_wall_s": 1.5,
            "overhead_ratio": 1.27,
            "spans": 4200,
            "traces": 900,
        }
        bench_trend.validate_entry(entry(observability=obs), 0)

    def test_entry_without_observability_still_valid(self):
        # Entries predating the A/B row stay valid without it.
        bench_trend.validate_entry(entry(), 0)


class TestRejectedEntries:
    def test_unknown_entry_key_named_in_error(self):
        with pytest.raises(bench_trend.SchemaError, match="surprise"):
            bench_trend.validate_entry(entry(surprise=1), 3)

    def test_missing_entry_key_named_in_error(self):
        bad = entry()
        del bad["headline_clients"]
        with pytest.raises(bench_trend.SchemaError, match="headline_clients"):
            bench_trend.validate_entry(bad, 0)

    def test_error_names_the_entry_index(self):
        with pytest.raises(bench_trend.SchemaError, match="entry 5"):
            bench_trend.validate_entry(entry(surprise=1), 5)

    def test_unknown_run_key_rejected(self):
        run = measured_run(gpu_util=0.5)
        with pytest.raises(bench_trend.SchemaError, match="gpu_util"):
            bench_trend.validate_entry(entry(runs=[run]), 0)

    def test_missing_run_key_rejected(self):
        run = measured_run()
        del run["wall_s"]
        with pytest.raises(bench_trend.SchemaError, match="wall_s"):
            bench_trend.validate_entry(entry(runs=[run]), 0)

    def test_skipped_stub_with_extra_key_rejected(self):
        stub = {"engine": "vector", "clients": 1, "skipped": "budget", "x": 1}
        with pytest.raises(bench_trend.SchemaError):
            bench_trend.validate_entry(entry(runs=[stub]), 0)

    def test_empty_runs_rejected(self):
        with pytest.raises(bench_trend.SchemaError, match="non-empty"):
            bench_trend.validate_entry(entry(runs=[]), 0)

    def test_non_dict_entry_rejected(self):
        with pytest.raises(bench_trend.SchemaError, match="expected an object"):
            bench_trend.validate_entry(["not", "a", "dict"], 0)

    def test_observability_unknown_key_rejected(self):
        obs = {
            "clients": 1000,
            "observed_wall_s": 1.9,
            "plain_wall_s": 1.5,
            "overhead_ratio": 1.27,
            "spans": 4200,
            "traces": 900,
            "surprise": 1,
        }
        with pytest.raises(bench_trend.SchemaError, match="surprise"):
            bench_trend.validate_entry(entry(observability=obs), 0)

    def test_observability_missing_key_rejected(self):
        obs = {"clients": 1000}
        with pytest.raises(bench_trend.SchemaError, match="observability"):
            bench_trend.validate_entry(entry(observability=obs), 0)

    def test_observability_non_dict_rejected(self):
        with pytest.raises(bench_trend.SchemaError, match="expected an object"):
            bench_trend.validate_entry(entry(observability=[1, 2]), 0)


class TestComparablePair:
    def test_same_host_entries_compare(self):
        a, b = entry(host="vm"), entry(host="vm")
        assert bench_trend.comparable_pair([a, b]) == (a, b)

    def test_cross_host_entries_never_compare(self):
        # Wall-clock throughput from another machine is not a baseline.
        assert bench_trend.comparable_pair(
            [entry(host="fast-box"), entry(host="vm")]
        ) is None

    def test_unstamped_legacy_entry_does_not_judge_stamped_one(self):
        assert bench_trend.comparable_pair([entry(), entry(host="vm")]) is None

    def test_unstamped_legacy_entries_still_compare_with_each_other(self):
        a, b = entry(), entry()
        assert bench_trend.comparable_pair([a, b]) == (a, b)


class TestRepoLog:
    def test_checked_in_trajectory_log_is_valid(self):
        # The log at the repo root must always satisfy its own schema.
        import json

        path = REPO_ROOT / "BENCH_scale.json"
        if not path.exists():
            pytest.skip("no trajectory log checked in")
        bench_trend.validate_log(json.loads(path.read_text())["entries"])
