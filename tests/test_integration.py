"""Cross-module integration tests: the full WhiteFi pipelines.

These tests wire several packages together the way the deliverable
system does: raw IQ through SIFT into discovery decisions, the chirp
OOK side channel end to end, and the complete BSS life cycle including
a backup-channel incumbent.
"""

import numpy as np
import pytest

from repro import constants
from repro.core.chirp import ChirpCodec
from repro.core.discovery import (
    DiscoverySession,
    JSiftDiscovery,
    LSiftDiscovery,
)
from repro.core.network import WhiteFiBss
from repro.phy.environment import BeaconingAp, RfEnvironment
from repro.phy.waveform import BurstSpec, synthesize_bursts
from repro.radio import Scanner, Transceiver
from repro.sift.analyzer import SiftAnalyzer
from repro.sim.engine import Engine
from repro.sim.medium import Medium
from repro.spectrum.incumbents import (
    IncumbentField,
    TvStation,
    WirelessMicrophone,
)
from repro.spectrum.channels import WhiteFiChannel
from repro.spectrum.spectrum_map import SpectrumMap


class TestIqToDiscovery:
    """Full-fidelity path: beacon schedule -> IQ -> SIFT -> channel."""

    def test_two_aps_in_band_discovery_finds_one(self):
        env = RfEnvironment(seed=6)
        env.add_transmitter(BeaconingAp(WhiteFiChannel(5, 10.0), phase_us=3_000.0))
        env.add_transmitter(
            BeaconingAp(WhiteFiChannel(20, 20.0), phase_us=47_000.0)
        )
        session = DiscoverySession(
            Scanner(env),
            Transceiver(env, rng=np.random.default_rng(6)),
            SpectrumMap.all_free(),
        )
        outcome = LSiftDiscovery().discover(session)
        # The linear scan encounters the lower AP first.
        assert outcome.channel == WhiteFiChannel(5, 10.0)

    def test_data_only_transmitter_still_detected(self):
        # Discovery keys off any Data-ACK signature, not just beacons;
        # the verify step still needs a beacon, so give the AP both.
        env = RfEnvironment(seed=8)
        env.add_transmitter(
            BeaconingAp(
                WhiteFiChannel(9, 20.0),
                phase_us=11_000.0,
                data_payload_bytes=1000,
                data_gap_us=4_000.0,
            )
        )
        session = DiscoverySession(
            Scanner(env),
            Transceiver(env, rng=np.random.default_rng(8)),
            SpectrumMap.all_free(),
        )
        outcome = JSiftDiscovery().discover(session)
        assert outcome.succeeded
        assert outcome.channel == WhiteFiChannel(9, 20.0)

    def test_scanner_airtime_feeds_mcham_shape(self):
        # A loaded channel must yield a lower MCham than a clean one when
        # the airtime input comes from the real IQ->SIFT path.
        from repro.core.mcham import mcham
        from repro.spectrum.airtime import AirtimeObservation

        env = RfEnvironment(seed=9)
        env.add_transmitter(
            BeaconingAp(
                WhiteFiChannel(5, 5.0),
                phase_us=0.0,
                data_payload_bytes=1000,
                data_gap_us=2_000.0,
            )
        )
        scanner = Scanner(env)
        busy = scanner.measure_airtime(5, 0.0, 400_000.0)
        quiet = scanner.measure_airtime(20, 0.0, 400_000.0)
        assert busy > 0.4 and quiet < 0.05
        observation = AirtimeObservation.from_mappings(
            {5: busy, 20: quiet}, {5: 1}, 30
        )
        assert mcham(WhiteFiChannel(20, 5.0), observation) > mcham(
            WhiteFiChannel(5, 5.0), observation
        )


class TestChirpSideChannel:
    """The OOK chirp length survives the whole signal chain."""

    def test_ap_filters_foreign_chirps_from_iq(self):
        from repro.core.ap import ApController

        base_map = SpectrumMap.from_free([5, 6, 7, 8, 9, 14], 30)
        ap = ApController(ssid_code=4, ap_map=base_map)
        codec = ChirpCodec()
        rng = np.random.default_rng(10)

        # Two chirps on the backup channel: ours (code 4), foreign (9).
        ours = BurstSpec(1_000.0, codec.duration_us(4), 900.0)
        foreign = BurstSpec(
            ours.end_us + 3_000.0, codec.duration_us(9), 900.0
        )
        trace = synthesize_bursts(
            [ours, foreign], foreign.end_us + 1_000.0, rng=rng
        )
        result = SiftAnalyzer().scan(trace)
        unpaired = result.unpaired_bursts()
        assert len(unpaired) == 2
        verdicts = [ap.chirp_is_ours(b.duration_us) for b in unpaired]
        assert verdicts == [True, False]


class TestBssLifecycle:
    """Full protocol runs under adversarial incumbent schedules."""

    BASE = SpectrumMap.from_free([5, 6, 7, 8, 9, 12, 13, 14, 18, 27], 30)

    def _field(self, mics):
        field = IncumbentField(
            30, tv_stations=[TvStation(i) for i in self.BASE.occupied_indices()]
        )
        for mic in mics:
            field.add_microphone(mic)
        return field

    def test_mic_on_backup_channel_forces_secondary(self):
        # The mic lands on the advertised backup; the chirping client
        # must fall back to an arbitrary free channel and the system
        # still recovers.
        engine = Engine()
        medium = Medium(engine, 30)
        main_mic = WirelessMicrophone(7)
        main_mic.add_session(5_000_000.0, 1e12)
        bss = WhiteFiBss(
            engine, medium, self._field([main_mic]), self.BASE, [self.BASE],
            seed=2,
        )
        bss.start()
        backup = bss.ap_ctrl.state.backup_channel
        # Occupy the backup too, from the client's perspective.
        backup_mic = WirelessMicrophone(backup.center_index)
        backup_mic.add_session(4_900_000.0, 1e12)
        bss.incumbents.add_microphone(backup_mic)
        engine.run_until(20_000_000.0)
        assert bss.disconnections
        episode = bss.disconnections[0]
        assert episode.reconnected_us is not None
        spanned = set(episode.new_channel.spanned_indices)
        assert 7 not in spanned

    def test_sequential_mic_episodes(self):
        # Two mics activate one after the other; the BSS survives both.
        engine = Engine()
        medium = Medium(engine, 30)
        first = WirelessMicrophone(7)
        first.add_session(4_000_000.0, 1e12)
        second = WirelessMicrophone(13)
        second.add_session(20_000_000.0, 1e12)
        bss = WhiteFiBss(
            engine,
            medium,
            self._field([first, second]),
            self.BASE,
            [self.BASE],
            seed=4,
        )
        bss.start()
        engine.run_until(40_000_000.0)
        assert len(bss.disconnections) >= 2
        final = bss.ap_ctrl.state.main_channel
        assert final is not None
        spanned = set(final.spanned_indices)
        assert 7 not in spanned and 13 not in spanned
        client = bss.clients[0][1]
        assert client.delivered_bytes > 0

    def test_throughput_only_dips_during_recovery(self):
        engine = Engine()
        medium = Medium(engine, 30)
        mic = WirelessMicrophone(7)
        mic.add_session(6_000_000.0, 1e12)
        bss = WhiteFiBss(
            engine, medium, self._field([mic]), self.BASE, [self.BASE], seed=3
        )
        bss.start()
        client = bss.clients[0][1]
        engine.run_until(5_000_000.0)
        before = client.delivered_bytes
        engine.run_until(12_000_000.0)
        after_recovery = client.delivered_bytes
        engine.run_until(19_000_000.0)
        steady = client.delivered_bytes
        # Data flowed before, and continues after, the episode.
        assert before > 0
        assert after_recovery > before
        post_rate = (steady - after_recovery) / 7.0
        pre_rate = before / 5.0
        # The narrower recovery channel is slower but within 4x.
        assert post_rate >= pre_rate / 4.0
