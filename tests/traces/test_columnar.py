"""Tests for the columnar (.npz) trace export and its losslessness."""

import pytest

np = pytest.importorskip("numpy")

from repro.errors import SimulationError  # noqa: E402
from repro.traces.columnar import (  # noqa: E402
    columnar_stats,
    from_columnar,
    read_columnar,
    to_columnar,
)
from repro.traces.record import (  # noqa: E402
    EVENT_KINDS,
    TraceEvent,
    read_trace,
    write_trace,
)


def varied_events() -> list[TraceEvent]:
    """Exercises every mask combination, including the empty channel set."""
    events = [
        TraceEvent(t_us=0.0, kind="mic", subject=0, cell=(2, 3),
                   channels=(14,), aux=14),
        TraceEvent(t_us=0.0, kind="push", subject=9, cell=(2, 3), aux=0),
        TraceEvent(t_us=1e6, kind="query", subject=0, cell=(4, 4),
                   channels=(), x=101.25, y=9.875, aux=0),
        TraceEvent(t_us=1e6, kind="query", subject=1, cell=(4, 5),
                   channels=(7, 8, 9), x=0.1, y=2500.0, aux=1),
        TraceEvent(t_us=1e6, kind="recheck", subject=3, cell=(4, 4),
                   channels=None, aux=0),
        TraceEvent(t_us=2e6, kind="handoff", subject=3, cell=(1, 1),
                   channels=(5,), aux=2),
        TraceEvent(t_us=2e6, kind="violation_open", subject=3,
                   channels=(5,)),
        TraceEvent(t_us=3e6, kind="violation_close", subject=3, aux=1),
    ]
    return sorted(events, key=TraceEvent.sort_key)


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "source.jsonl.gz"
    write_trace(path, varied_events(), meta={"label": "columnar-unit"})
    return path


class TestRoundTrip:
    def test_events_and_header_survive(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        to_columnar(trace_path, npz)
        header, events = read_columnar(npz)
        source_header, source_events = read_trace(trace_path)
        assert header == source_header
        assert events == source_events

    def test_regenerated_jsonl_is_byte_identical(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        restored = tmp_path / "restored.jsonl.gz"
        to_columnar(trace_path, npz)
        from_columnar(npz, restored)
        assert restored.read_bytes() == trace_path.read_bytes()

    def test_empty_channel_set_distinct_from_none(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        to_columnar(trace_path, npz)
        _, events = read_columnar(npz)
        by_key = {(e.kind, e.subject): e for e in events}
        assert by_key[("query", 0)].channels == ()  # shed, no stale copy
        assert by_key[("recheck", 3)].channels is None  # deferred
        assert by_key[("query", 1)].channels == (7, 8, 9)

    def test_exact_float_coordinates(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        to_columnar(trace_path, npz)
        _, events = read_columnar(npz)
        queries = [e for e in events if e.kind == "query"]
        assert [(e.x, e.y) for e in queries] == [(101.25, 9.875), (0.1, 2500.0)]


class TestStats:
    def test_returned_and_stored_stats_match(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        returned = to_columnar(trace_path, npz)
        assert columnar_stats(npz) == returned

    def test_stats_cover_present_entries_only(self, trace_path, tmp_path):
        npz = tmp_path / "trace.npz"
        stats = to_columnar(trace_path, npz)
        events = varied_events()
        assert stats["t_us"] == {"min": 0.0, "max": 3e6, "count": len(events)}
        assert stats["kind"]["max"] <= len(EVENT_KINDS) - 1
        # Only the two query events carry coordinates.
        assert stats["x"] == {"min": 0.1, "max": 101.25, "count": 2}
        assert stats["y"] == {"min": 9.875, "max": 2500.0, "count": 2}
        # aux stats skip the aux-less violation_open event.
        aux_present = [e for e in events if e.aux is not None]
        assert stats["aux"]["count"] == len(aux_present)

    def test_missing_archive_raises(self, tmp_path):
        with pytest.raises(SimulationError, match="no columnar trace"):
            read_columnar(tmp_path / "absent.npz")
        with pytest.raises(SimulationError, match="no columnar trace"):
            columnar_stats(tmp_path / "absent.npz")
