"""Tests for the trace schema, recorder, and deterministic writer."""

import gzip
import json

import pytest

from repro.errors import SimulationError
from repro.traces.record import (
    EVENT_KINDS,
    NULL_RECORDER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    NullTraceRecorder,
    TraceEvent,
    TraceRecorder,
    read_trace,
    write_trace,
)


def sample_events() -> list[TraceEvent]:
    return [
        TraceEvent(t_us=0.0, kind="mic", subject=0, cell=(3, 4),
                   channels=(21,), aux=21),
        TraceEvent(t_us=1_000_000.0, kind="query", subject=0, cell=(1, 2),
                   channels=(4, 5, 6), x=123.456, y=789.0125, aux=1),
        TraceEvent(t_us=1_000_000.0, kind="recheck", subject=7,
                   cell=(1, 2), channels=None, aux=0),
        TraceEvent(t_us=2_000_000.0, kind="handoff", subject=7, cell=(5, 5),
                   channels=(8, 9), aux=3),
        TraceEvent(t_us=2_000_000.0, kind="violation_open", subject=7,
                   channels=(8, 9)),
        TraceEvent(t_us=3_000_000.0, kind="violation_close", subject=7,
                   aux=0),
        TraceEvent(t_us=0.0, kind="push", subject=4, cell=(3, 4), aux=0),
    ]


class TestEvent:
    def test_to_dict_omits_none_fields(self):
        record = TraceEvent(t_us=5.0, kind="query", subject=1).to_dict()
        assert record == {"t_us": 5.0, "kind": "query", "subject": 1}

    def test_dict_roundtrip(self):
        for event in sample_events():
            assert TraceEvent.from_dict(event.to_dict()) == event

    def test_from_dict_survives_json(self):
        for event in sample_events():
            blob = json.dumps(event.to_dict())
            assert TraceEvent.from_dict(json.loads(blob)) == event

    def test_sort_key_orders_kinds_within_timestamp(self):
        ranks = [
            TraceEvent(t_us=1.0, kind=kind).sort_key()[1]
            for kind in EVENT_KINDS
        ]
        assert ranks == sorted(ranks)


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl.gz"
        events = sorted(sample_events(), key=TraceEvent.sort_key)
        write_trace(path, events, meta={"label": "unit"})
        header, restored = read_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_SCHEMA_VERSION
        assert header["events"] == len(events)
        assert header["meta"] == {"label": "unit"}
        assert restored == events

    def test_identical_streams_identical_bytes(self, tmp_path):
        events = sorted(sample_events(), key=TraceEvent.sort_key)
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "basename-differs.jsonl.gz"
        write_trace(a, events, meta={"k": 1})
        write_trace(b, events, meta={"k": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_plain_jsonl_accepted(self, tmp_path):
        gz = tmp_path / "run.jsonl.gz"
        events = sorted(sample_events(), key=TraceEvent.sort_key)
        write_trace(gz, events)
        plain = tmp_path / "run.jsonl"
        plain.write_bytes(gzip.decompress(gz.read_bytes()))
        header, restored = read_trace(plain)
        assert header["events"] == len(events)
        assert restored == events

    def test_missing_and_empty_files_raise(self, tmp_path):
        with pytest.raises(SimulationError, match="no trace file"):
            read_trace(tmp_path / "absent.jsonl.gz")
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(SimulationError, match="empty trace"):
            read_trace(empty)

    def test_foreign_schema_and_version_raise(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text(json.dumps({"schema": "other/v9"}) + "\n")
        with pytest.raises(SimulationError, match="not a repro.traces"):
            read_trace(foreign)
        newer = tmp_path / "newer.jsonl"
        newer.write_text(
            json.dumps({"schema": TRACE_SCHEMA, "version": 99}) + "\n"
        )
        with pytest.raises(SimulationError, match="version"):
            read_trace(newer)


class TestRecorder:
    def test_sorts_into_canonical_order(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "run.jsonl.gz")
        # Emit deliberately out of order: later tick first, then two
        # same-tick events in reverse kind rank, then reverse subject.
        recorder.emit("query", t_us=2e6, subject=0, x=1.0, y=2.0, aux=1)
        recorder.emit("recheck", t_us=1e6, subject=3, cell=(0, 0), aux=1)
        recorder.emit("mic", t_us=1e6, subject=0, cell=(0, 0), channels=(7,))
        recorder.emit("recheck", t_us=1e6, subject=1, cell=(0, 0), aux=1)
        keys = [e.sort_key() for e in recorder.sorted_events()]
        assert keys == sorted(keys)

    def test_normalizes_value_types(self, tmp_path):
        np = pytest.importorskip("numpy")
        recorder = TraceRecorder(tmp_path / "run.jsonl.gz")
        recorder.emit(
            "handoff",
            t_us=np.float64(5.0),
            subject=np.int64(2),
            cell=(np.int64(1), np.int64(2)),
            channels=np.array([3, 4]),
            aux=np.int32(9),
        )
        [event] = recorder.sorted_events()
        assert type(event.t_us) is float
        assert type(event.subject) is int
        assert event.cell == (1, 2) and all(
            type(v) is int for v in event.cell
        )
        assert event.channels == (3, 4)
        assert type(event.aux) is int

    def test_unknown_kind_raises(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "run.jsonl.gz")
        with pytest.raises(SimulationError, match="unknown trace event"):
            recorder.emit("teleport", t_us=0.0)

    def test_close_idempotent_and_context_manager(self, tmp_path):
        path = tmp_path / "run.jsonl.gz"
        with TraceRecorder(path, meta={"n": 1}) as recorder:
            recorder.emit("mic", t_us=0.0, subject=0, channels=(4,))
        first = path.read_bytes()
        recorder.close()  # idempotent: does not rewrite
        assert path.read_bytes() == first
        header, events = read_trace(path)
        assert header["meta"] == {"n": 1} and len(events) == 1

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullTraceRecorder)
        NULL_RECORDER.emit("anything", "goes", totally=object())
        NULL_RECORDER.close()
        with NULL_RECORDER as same:
            assert same is NULL_RECORDER
