"""End-to-end trace tests: record, replay bit-identity, engine parity,
the storm seam, full event-kind coverage, and the trace_diff tool."""

import collections
import pathlib
import random
import subprocess
import sys

import pytest

from repro.errors import SimulationError
from repro.sim.rng import stream_seed
from repro.traces.record import TraceEvent, TraceRecorder, read_trace
from repro.traces.replay import TraceWorkload
from repro.wsdb.citywide import simulate_citywide
from repro.wsdb.cluster import ShardRouter, simulate_querystorm
from repro.wsdb.cluster.querystorm import StormFeed, synthetic_storm
from repro.wsdb.mobility import simulate_roaming
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent
TRACE_DIFF = REPO_ROOT / "scripts" / "trace_diff.py"


def storm_router(seed: int = 11) -> ShardRouter:
    metro = generate_metro(
        range(12), extent_m=2_500.0, seed=seed, num_channels=30
    )
    return ShardRouter(metro, num_shards=4)


def run_storm(recorder=None, storm_source=None, engine="scalar", **overrides):
    params = dict(
        num_clients=8,
        duration_us=40e6,
        seed=11,
        offered_qps=40.0,
        push=True,
        mic_events=4,
        speed_mps=6.0,
    )
    params.update(overrides)
    return simulate_querystorm(
        storm_router(params["seed"]),
        12,
        engine=engine,
        recorder=recorder,
        storm_source=storm_source,
        **params,
    )


def record_storm(path, engine="scalar", **overrides):
    recorder = TraceRecorder(path)
    report = run_storm(recorder=recorder, engine=engine, **overrides)
    recorder.close()
    return report


class TestSyntheticStormSeam:
    def test_matches_inline_budget_algorithm(self):
        rng_seed = stream_seed(11, "querystorm-load")
        offered_qps, tick_us, ticks, extent_m = 40.0, 1e6, 40, 2_500.0
        # The pre-seam inline algorithm, reimplemented independently.
        rng = random.Random(rng_seed)
        expected, budget = [], 0.0
        for tick in range(ticks + 1):
            budget += offered_qps * tick_us / 1e6
            n = int(budget)
            budget -= n
            for _ in range(n):
                expected.append(
                    (
                        tick * tick_us,
                        rng.uniform(0.0, extent_m),
                        rng.uniform(0.0, extent_m),
                    )
                )
        produced = list(
            synthetic_storm(
                offered_qps, tick_us, ticks, extent_m, random.Random(rng_seed)
            )
        )
        assert produced == expected

    def test_storm_feed_drains_in_fence_order(self):
        points = [(0.0, 1.0, 1.0), (0.0, 2.0, 2.0), (2e6, 3.0, 3.0)]
        feed = StormFeed(iter(points))
        assert feed.burst(0.0) == [(1.0, 1.0), (2.0, 2.0)]
        assert feed.burst(1e6) == []
        assert feed.burst(2e6) == [(3.0, 3.0)]
        assert feed.burst(3e6) == []


class TestRecordingIsObservational:
    def test_report_unchanged_with_recorder(self, tmp_path):
        baseline = run_storm()
        recorded = record_storm(tmp_path / "storm.jsonl.gz")
        assert recorded == baseline

    def test_roaming_and_citywide_reports_unchanged(self, tmp_path):
        # Mic registrations mutate the metro, so every run gets a
        # freshly generated (deterministic) metro + database.
        def fresh_db() -> WhiteSpaceDatabase:
            metro = generate_metro(
                range(12), extent_m=2_000.0, seed=7, num_channels=30
            )
            return WhiteSpaceDatabase(metro, cache_resolution_m=100.0)

        kwargs = dict(
            num_aps=6, num_clients=5, duration_us=30e6, seed=7, mic_events=3
        )
        baseline = simulate_roaming(fresh_db(), **kwargs)
        with TraceRecorder(tmp_path / "roam.jsonl.gz") as recorder:
            recorded = simulate_roaming(
                fresh_db(), recorder=recorder, **kwargs
            )
        assert recorded == baseline
        assert len(read_trace(tmp_path / "roam.jsonl.gz")[1]) > 0

        city_base = simulate_citywide(
            fresh_db(), num_aps=6, duration_us=30e6, seed=7, mic_events=3
        )
        with TraceRecorder(tmp_path / "city.jsonl.gz") as recorder:
            city_rec = simulate_citywide(
                fresh_db(),
                num_aps=6,
                duration_us=30e6,
                seed=7,
                mic_events=3,
                recorder=recorder,
            )
        assert city_rec == city_base
        _, city_events = read_trace(tmp_path / "city.jsonl.gz")
        kinds = {e.kind for e in city_events}
        assert kinds == {"mic", "query"}


class TestEngineParity:
    def test_scalar_and_vector_traces_byte_identical(self, tmp_path):
        pytest.importorskip("numpy")
        scalar = tmp_path / "scalar.jsonl.gz"
        vector = tmp_path / "vector.jsonl.gz"
        record_storm(scalar, engine="scalar")
        record_storm(vector, engine="vector")
        assert scalar.read_bytes() == vector.read_bytes()


class TestReplayDeterminism:
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_replay_reproduces_report_and_trace(self, tmp_path, engine):
        if engine == "vector":
            pytest.importorskip("numpy")
        source_path = tmp_path / "source.jsonl.gz"
        source_report = record_storm(source_path, engine=engine)

        workload = TraceWorkload.open(source_path)
        assert len(workload) == source_report["storm_queries"]

        replay_path = tmp_path / "replay.jsonl.gz"
        recorder = TraceRecorder(replay_path)
        replay_report = run_storm(
            recorder=recorder, storm_source=workload, engine=engine
        )
        recorder.close()

        assert replay_report == source_report
        assert replay_path.read_bytes() == source_path.read_bytes()

    def test_replay_from_columnar_archive(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.traces.columnar import to_columnar

        source_path = tmp_path / "source.jsonl.gz"
        source_report = record_storm(source_path)
        npz = tmp_path / "source.npz"
        to_columnar(source_path, npz)
        replay_report = run_storm(storm_source=TraceWorkload.open(npz))
        assert replay_report == source_report

    def test_workload_requires_coordinates(self):
        bare = [TraceEvent(t_us=0.0, kind="query", subject=0)]
        with pytest.raises(SimulationError, match="no coordinates"):
            TraceWorkload(bare)


class TestEventCoverage:
    def test_all_kinds_emitted_across_push_modes(self, tmp_path):
        # push=True exercises push refreshes; push=False lets clients
        # drift into ground-truth violations between polls.  Between
        # the two recordings every schema kind appears.
        rich = dict(
            num_clients=30,
            duration_us=160e6,
            offered_qps=20.0,
            mic_events=10,
        )
        record_storm(tmp_path / "push.jsonl.gz", push=True, **rich)
        record_storm(tmp_path / "pull.jsonl.gz", push=False, **rich)
        kinds = collections.Counter()
        for name in ("push.jsonl.gz", "pull.jsonl.gz"):
            _, events = read_trace(tmp_path / name)
            kinds.update(e.kind for e in events)
        assert set(kinds) == {
            "mic",
            "push",
            "query",
            "recheck",
            "handoff",
            "violation_open",
            "violation_close",
        }


class TestTraceDiffTool:
    def run_diff(self, *paths):
        return subprocess.run(
            [sys.executable, str(TRACE_DIFF), *map(str, paths)],
            capture_output=True,
            text=True,
        )

    def test_identical_traces_exit_zero(self, tmp_path):
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        record_storm(a)
        record_storm(b)
        result = self.run_diff(a, b)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "identical" in result.stdout

    def test_diverged_traces_exit_nonzero(self, tmp_path):
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        record_storm(a, seed=11)
        record_storm(b, seed=12)
        result = self.run_diff(a, b)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "delta" in result.stdout
