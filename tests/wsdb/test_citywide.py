"""Tests for the city-scale deployment driver."""

import pytest

from repro.errors import SimulationError
from repro.wsdb.citywide import generate_mic_events, simulate_citywide
from repro.wsdb.model import Metro, generate_metro
from repro.wsdb.service import WhiteSpaceDatabase


def empty_dial_db(extent_m: float = 2_000.0, num_channels: int = 30):
    """A metro with no TV sites: mics are the only incumbents."""
    return WhiteSpaceDatabase(
        Metro(extent_m=extent_m, num_channels=num_channels)
    )


class TestMicEvents:
    def test_deterministic_and_time_ordered(self):
        a = generate_mic_events(20, 600e6, 2_000.0, 30, seed=5)
        b = generate_mic_events(20, 600e6, 2_000.0, 30, seed=5)
        assert a == b
        assert a != generate_mic_events(20, 600e6, 2_000.0, 30, seed=6)
        assert all(x.t_us <= y.t_us for x, y in zip(a, a[1:]))
        for event in a:
            # Sessions start inside the window but may outlive it.
            assert 0.0 <= event.t_us <= 600e6
            assert event.end_us >= event.t_us
            assert 0 <= event.uhf_index < 30


class TestSimulateCitywide:
    def test_invalid_parameters_raise(self):
        db = empty_dial_db()
        with pytest.raises(SimulationError):
            simulate_citywide(db, num_aps=0, duration_us=1e6, seed=0)
        with pytest.raises(SimulationError):
            simulate_citywide(db, num_aps=5, duration_us=0.0, seed=0)

    def test_clean_metro_assigns_everyone_widest(self):
        report = simulate_citywide(
            empty_dial_db(extent_m=20_000.0),
            num_aps=10,
            duration_us=1e6,
            seed=1,
        )
        assert report["assigned_aps"] == 10
        assert report["unserved_aps"] == 0
        # Spread over 20 km with a 2.5 km interference radius, most APs
        # see little contention and take a 20 MHz channel.
        widths = dict(report["width_counts"])
        assert widths.get(20.0, 0) >= 5
        assert report["aggregate_mbps"] == pytest.approx(
            sum(mbps for *_, mbps in report["per_ap"])
        )

    def test_mic_events_displace_and_recover(self):
        # A tiny plane (mic zones cover most of it) with many events:
        # displacement is guaranteed, and every displacement is
        # accounted for as a backup hit, a re-assignment, or an outage.
        report = simulate_citywide(
            empty_dial_db(extent_m=2_000.0),
            num_aps=8,
            duration_us=600e6,
            seed=3,
            mic_events=25,
        )
        assert report["mic_events"] == 25
        assert report["displaced_aps"] > 0
        assert report["displaced_aps"] == (
            report["backup_recoveries"]
            + report["full_reassignments"]
            + report["outages"]
        )
        assert report["noncompliant_aps"] == 0
        assert report["db"]["mic_registrations"] == 25
        assert report["db"]["invalidations"] > 0

    def test_final_sweep_queries_each_ap_exactly_once(self):
        # Regression: the end-of-session sweep used to ask the database
        # twice per AP at the same t (once for the disagreement map,
        # once for the compliance free-set), double-counting
        # stats.queries and inflating the reported hit rate.  One boot
        # query plus one final-sweep query per AP, nothing else.
        report = simulate_citywide(
            empty_dial_db(extent_m=20_000.0),
            num_aps=12,
            duration_us=1e6,
            seed=4,
        )
        db = report["db"]
        assert db["queries"] == 2 * 12
        assert db["cache_hits"] + db["cache_misses"] == db["queries"]
        # Boot and sweep share one TTL bucket here, so every sweep
        # query is a hit: the honest hit rate is exactly one half.
        assert db["cache_hits"] == 12
        assert db["hit_rate"] == pytest.approx(0.5)

    def test_deterministic_per_seed(self):
        def run(seed):
            db = WhiteSpaceDatabase(
                generate_metro(range(0, 12), seed=99)
            )
            return simulate_citywide(
                db, num_aps=20, duration_us=300e6, seed=seed, mic_events=5
            )

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_dense_city_contends_harder_than_sparse(self):
        db_sparse = empty_dial_db(extent_m=20_000.0)
        db_dense = empty_dial_db(extent_m=20_000.0)
        sparse = simulate_citywide(db_sparse, 10, 1e6, seed=2)
        dense = simulate_citywide(db_dense, 150, 1e6, seed=2)
        assert dense["mean_ap_mbps"] < sparse["mean_ap_mbps"]
