"""Tests for the BatchFrontend: token-bucket admission, burst
coalescing, shed policies, and stale-store invalidation."""

import pytest

from repro.errors import SimulationError, SpectrumMapError
from repro.wsdb.cluster.frontend import (
    BatchFrontend,
    SHED_POLICIES,
    TokenBucket,
    shed_policy,
)
from repro.wsdb.cluster.push import PushRegistry
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.model import Metro, MicRegistration, generate_metro
from repro.wsdb.service import WhiteSpaceDatabase


def dense_router(num_shards: int = 4) -> ShardRouter:
    metro = generate_metro(range(12), extent_m=4_000.0, seed=7, num_channels=30)
    return ShardRouter(metro, num_shards=num_shards)


class TestTokenBucket:
    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(None)
        assert all(bucket.admit(0.0) for _ in range(10_000))

    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_qps=10.0, burst_size=3)
        # Full burst at t=0, then dry.
        assert [bucket.admit(0.0) for _ in range(4)] == [True] * 3 + [False]
        # 10 qps -> one token every 100 ms of simulation time.
        assert bucket.admit(100_000.0) is True
        assert bucket.admit(100_000.0) is False

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_qps=1.0, burst_size=1)
        assert bucket.admit(5e6) is True
        # An out-of-order earlier timestamp mints nothing.
        assert bucket.admit(1e6) is False

    def test_default_burst_is_one_second(self):
        bucket = TokenBucket(rate_qps=50.0)
        assert bucket.burst_size == 50.0

    def test_sub_one_qps_rate_still_admits(self):
        # The default burst floors at one token: a 0.5 qps bucket must
        # not start (and stay) permanently below the admit threshold.
        bucket = TokenBucket(rate_qps=0.5)
        assert bucket.admit(0.0) is True
        assert bucket.admit(0.0) is False
        assert bucket.admit(2e6) is True  # 2 s at 0.5 qps -> one token

    def test_invalid_parameters_raise(self):
        with pytest.raises(SpectrumMapError):
            TokenBucket(rate_qps=0.0)
        with pytest.raises(SpectrumMapError):
            TokenBucket(rate_qps=10.0, burst_size=0.5)


class TestBatching:
    def test_batch_answers_match_direct_database(self):
        metro_args = dict(extent_m=4_000.0, seed=7, num_channels=30)
        single = WhiteSpaceDatabase(generate_metro(range(12), **metro_args))
        frontend = BatchFrontend(dense_router())
        points = [(x * 137.0 % 4_000.0, x * 211.0 % 4_000.0) for x in range(120)]
        assert frontend.query_batch(points, 5.0) == single.channels_at_many(
            points, 5.0
        )

    def test_same_cell_burst_coalesces_to_one_lookup(self):
        frontend = BatchFrontend(dense_router())
        burst = [(1_010.0 + i * 0.5, 1_010.0) for i in range(40)]  # one cell
        responses = frontend.query_batch(burst, 0.0)
        assert len(set(responses)) == 1
        assert frontend.stats.requests == 40
        assert frontend.stats.coalesced == 39
        assert frontend.stats.shard_batches == 1
        # The shards saw one query, not forty.
        assert frontend.router.aggregate_stats().queries == 1

    def test_multi_shard_burst_batches_per_shard(self):
        router = dense_router(num_shards=4)
        frontend = BatchFrontend(router)
        # One point per quadrant of the 4 km plane.
        burst = [(500.0, 500.0), (3_500.0, 500.0), (500.0, 3_500.0), (3_500.0, 3_500.0)]
        frontend.query_batch(burst, 0.0)
        assert frontend.stats.shard_batches == 4
        assert frontend.stats.coalesced == 0

    def test_empty_batch_is_free(self):
        frontend = BatchFrontend(dense_router())
        assert frontend.query_batch([], 0.0) == []
        assert frontend.stats.batches == 0


class TestShedding:
    def test_reject_policy_returns_none_over_limit(self):
        frontend = BatchFrontend(
            dense_router(), rate_limit_qps=10.0, burst_size=2
        )
        responses = frontend.query_batch([(100.0, 100.0)] * 5, 0.0)
        assert responses[:2] == [responses[0]] * 2
        assert responses[2:] == [None, None, None]
        assert frontend.stats.shed == 3
        assert frontend.stats.served_stale == 0
        assert frontend.stats.shed_rate == pytest.approx(0.6)

    def test_serve_stale_answers_from_last_known_response(self):
        frontend = BatchFrontend(
            dense_router(), rate_limit_qps=10.0, burst_size=1, policy="serve-stale"
        )
        first = frontend.query(100.0, 100.0, 0.0)
        assert first is not None
        # Bucket dry at the same timestamp: the same cell is served
        # stale; a cold cell has nothing to offer and is refused.
        assert frontend.query(120.0, 120.0, 0.0) == first
        assert frontend.stats.served_stale == 1
        assert frontend.query(3_900.0, 3_900.0, 0.0) is None
        assert frontend.stats.shed == 2

    def test_serve_stale_never_serves_past_the_ttl_bucket(self):
        # A stale entry is only valid inside the TTL bucket it was
        # computed in — the protocol's own validity contract.  A shed
        # request in a later bucket finds the entry dead and is
        # refused, exactly as the database itself would recompute.
        frontend = BatchFrontend(
            dense_router(), rate_limit_qps=10.0, burst_size=1, policy="serve-stale"
        )
        assert frontend.query(100.0, 100.0, 0.0) is not None
        frontend.bucket._tokens = 0.0
        frontend.bucket._last_t_us = 61e6
        assert frontend.query(120.0, 120.0, 61e6) is None
        assert frontend.stats.served_stale == 0
        assert frontend.stats.shed == 1

    def test_admitted_requests_in_a_shed_batch_still_answer(self):
        # Mixed batch: the first request drains the bucket, the rest
        # shed, and ordering is preserved position by position.
        frontend = BatchFrontend(
            dense_router(), rate_limit_qps=10.0, burst_size=1
        )
        a, b, c = frontend.query_batch(
            [(100.0, 100.0), (2_900.0, 100.0), (100.0, 2_900.0)], 0.0
        )
        assert a is not None
        assert b is None and c is None

    def test_unknown_policy_raises(self):
        with pytest.raises(SimulationError):
            shed_policy("drop-table")
        with pytest.raises(SimulationError):
            BatchFrontend(dense_router(), policy="nope")
        assert set(SHED_POLICIES) == {"reject", "serve-stale"}


class TestStaleInvalidation:
    def test_register_mic_purges_stale_entries_inside_the_zone(self):
        frontend = BatchFrontend(dense_router(), policy="serve-stale")
        inside = frontend.query(1_000.0, 1_000.0, 0.0)
        outside = frontend.query(3_800.0, 3_800.0, 0.0)
        assert inside is not None and outside is not None
        frontend.register_mic(
            MicRegistration.single_session(
                14, 1_000.0, 1_000.0, 0.0, 60e6, radius_m=500.0
            )
        )
        qx, qy = frontend.router.cell_of(1_000.0, 1_000.0)
        assert frontend.stale_response(qx, qy) is None
        ox, oy = frontend.router.cell_of(3_800.0, 3_800.0)
        assert frontend.stale_response(ox, oy) == outside

    def test_register_mic_notifies_attached_registry(self):
        router = dense_router()
        registry = PushRegistry(router.cache_resolution_m)
        frontend = BatchFrontend(router, push=registry)
        registry.subscribe(5, *router.cell_of(1_000.0, 1_000.0))
        registry.subscribe(9, *router.cell_of(3_800.0, 3_800.0))
        notified = frontend.register_mic(
            MicRegistration.single_session(
                14, 1_000.0, 1_000.0, 0.0, 60e6, radius_m=500.0
            )
        )
        assert notified == (5,)

    def test_mismatched_registry_resolution_raises(self):
        router = dense_router()
        with pytest.raises(SimulationError):
            BatchFrontend(router, push=PushRegistry(router.cache_resolution_m * 2))

    def test_no_registry_means_empty_notification(self):
        frontend = BatchFrontend(dense_router())
        reg = MicRegistration.single_session(14, 500.0, 500.0, 0.0, 60e6)
        assert frontend.register_mic(reg) == ()

    def test_metro_with_empty_dial_still_serves(self):
        router = ShardRouter(
            Metro(extent_m=2_000.0, num_channels=10), num_shards=4
        )
        frontend = BatchFrontend(router)
        assert frontend.query(1_000.0, 1_000.0, 0.0) == tuple(range(10))
