"""Tests for the PushRegistry: subscription move semantics, zone
fan-out geometry, deterministic notification order, and counters."""

import pytest

from repro.errors import SpectrumMapError
from repro.wsdb.cluster.push import PushRegistry
from repro.wsdb.model import MicRegistration


def zone(x_m: float, y_m: float, radius_m: float = 500.0) -> MicRegistration:
    return MicRegistration.single_session(
        14, x_m, y_m, 0.0, 60e6, radius_m=radius_m
    )


class TestSubscriptions:
    def test_subscribe_move_unsubscribe(self):
        registry = PushRegistry(100.0)
        registry.subscribe(1, 5, 5)
        assert len(registry) == 1
        assert registry.subscribed_cell(1) == (5, 5)
        # Same cell: a no-op, not a move.
        registry.subscribe(1, 5, 5)
        assert registry.stats.subscriptions == 1
        assert registry.stats.moves == 0
        # New cell: the old subscription is released.
        registry.subscribe(1, 6, 5)
        assert registry.stats.moves == 1
        assert registry.subscribed_cell(1) == (6, 5)
        registry.unsubscribe(1)
        assert len(registry) == 0
        assert registry.subscribed_cell(1) is None
        # Absent device: a no-op.
        registry.unsubscribe(1)
        assert registry.stats.unsubscriptions == 1

    def test_invalid_resolution_raises(self):
        with pytest.raises(SpectrumMapError):
            PushRegistry(0.0)


class TestNotification:
    def test_zone_notifies_exactly_the_touched_cells(self):
        registry = PushRegistry(100.0)
        registry.subscribe(0, 10, 10)   # cell [1000, 1100)^2 — inside
        registry.subscribe(1, 14, 10)   # cell edge at 1400 m — grazed
        registry.subscribe(2, 30, 30)   # ~2.8 km away — untouched
        notified = registry.notify_zone(zone(1_050.0, 1_050.0, radius_m=400.0))
        assert notified == (0, 1)
        assert registry.stats.zones_notified == 1
        assert registry.stats.notifications == 2

    def test_notification_order_is_sorted_by_device_id(self):
        registry = PushRegistry(100.0)
        # Subscribe in scrambled order across two touched cells.
        for device_id, cell in ((9, (10, 10)), (2, (11, 10)), (7, (10, 11))):
            registry.subscribe(device_id, *cell)
        assert registry.notify_zone(zone(1_100.0, 1_100.0)) == (2, 7, 9)

    def test_zone_missing_everyone_notifies_nobody(self):
        registry = PushRegistry(100.0)
        registry.subscribe(0, 50, 50)
        assert registry.notify_zone(zone(100.0, 100.0)) == ()
        assert registry.stats.zones_notified == 0
        assert registry.stats.notifications == 0

    def test_shared_cell_notifies_every_subscriber(self):
        registry = PushRegistry(100.0)
        for device_id in (3, 1, 2):
            registry.subscribe(device_id, 10, 10)
        assert registry.notify_zone(zone(1_050.0, 1_050.0)) == (1, 2, 3)

    def test_geometry_matches_the_service_invalidation_predicate(self):
        # A device whose cell corner just touches the zone boundary is
        # notified (boundary-inclusive, like cache invalidation); one
        # cell further out is not.
        registry = PushRegistry(100.0)
        registry.subscribe(0, 15, 10)  # nearest corner (1500, 1000)
        registry.subscribe(1, 16, 10)  # nearest corner (1600, 1000)
        notified = registry.notify_zone(zone(1_000.0, 1_000.0, radius_m=500.0))
        assert notified == (0,)
