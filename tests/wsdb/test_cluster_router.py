"""Tests for the ShardRouter: cell-aligned partition, routing
determinism, response equality with the unsharded database, mic
fan-out, and the per-query candidate-scan reduction sharding buys."""

import random

import pytest

from repro.errors import SpectrumMapError
from repro.wsdb.cluster.router import ShardRouter, shard_grid
from repro.wsdb.model import (
    Metro,
    MicRegistration,
    generate_metro,
)
from repro.wsdb.service import WhiteSpaceDatabase


def spread_metro(seed: int = 42, extent_m: float = 20_000.0) -> Metro:
    # 30 channels x 4 low-EIRP sites: ~1.8-3.5 km contours over a
    # 20 km plane — genuinely partial coverage, the regime sharding
    # (and the spatial index generally) exists for.
    return generate_metro(
        range(30),
        extent_m=extent_m,
        seed=seed,
        sites_per_channel=(4, 4),
        eirp_range_dbm=(-5.0, 5.0),
    )


class TestShardGrid:
    def test_square_counts_tile_squares(self):
        assert shard_grid(1) == (1, 1)
        assert shard_grid(4) == (2, 2)
        assert shard_grid(16) == (4, 4)

    def test_awkward_counts_stay_exact(self):
        for k in (2, 3, 6, 7, 12, 30):
            cols, rows = shard_grid(k)
            assert cols * rows == k
            assert cols <= rows

    def test_invalid_count_raises(self):
        with pytest.raises(SpectrumMapError):
            shard_grid(0)
        with pytest.raises(SpectrumMapError):
            ShardRouter(spread_metro(), num_shards=0)


class TestPartition:
    def test_boundaries_are_cell_aligned_and_cover_the_plane(self):
        router = ShardRouter(
            spread_metro(), num_shards=6, cache_resolution_m=100.0
        )
        cols, rows = router.grid
        assert cols * rows == 6
        # Every on-plane cell belongs to exactly one territory, and
        # territory cell ranges tile [0, cells_per_side) per axis.
        xs = sorted(
            {(t.cell_x0, t.cell_x1) for t in router.territories}
        )
        assert xs[0][0] == 0
        assert xs[-1][1] == router.cells_per_side
        for (_, hi), (lo, _) in zip(xs, xs[1:]):
            assert hi == lo

    def test_routing_matches_territory_membership(self):
        router = ShardRouter(
            spread_metro(), num_shards=9, cache_resolution_m=250.0
        )
        rng = random.Random(5)
        for _ in range(300):
            x = rng.uniform(0.0, router.metro.extent_m)
            y = rng.uniform(0.0, router.metro.extent_m)
            shard_id = router.shard_of(x, y)
            territory = router.territories[shard_id]
            qx, qy = router.cell_of(x, y)
            assert territory.cell_x0 <= qx < territory.cell_x1
            assert territory.cell_y0 <= qy < territory.cell_y1

    def test_offplane_coordinates_route_to_border_shards(self):
        router = ShardRouter(spread_metro(), num_shards=4)
        assert router.shard_of(-500.0, -500.0) == 0
        last = router.num_shards - 1
        extent = router.metro.extent_m
        assert router.shard_of(extent + 500.0, extent + 500.0) == last

    def test_too_many_shards_for_the_cell_grid_raises(self):
        metro = Metro(extent_m=1_000.0, num_channels=5)
        with pytest.raises(SpectrumMapError):
            # 2 cells per axis cannot host a 3x3 grid.
            ShardRouter(metro, num_shards=9, cache_resolution_m=500.0)


class TestResponseEquality:
    """Sharding must never change a response — the acceptance bar."""

    def test_sharded_equals_unsharded_everywhere(self):
        single = WhiteSpaceDatabase(spread_metro())
        rng = random.Random(11)
        extent = single.metro.extent_m
        # Include off-plane and negative coordinates: border
        # territories extend outward, so clamped routing stays exact.
        points = [
            (
                rng.uniform(-0.2 * extent, 1.2 * extent),
                rng.uniform(-0.2 * extent, 1.2 * extent),
            )
            for _ in range(600)
        ]
        expected = single.channels_at_many(points, t_us=3.0)
        for num_shards in (1, 3, 4, 16):
            router = ShardRouter(spread_metro(), num_shards=num_shards)
            assert router.channels_at_many(points, t_us=3.0) == expected

    def test_equality_holds_across_mic_registrations(self):
        single = WhiteSpaceDatabase(spread_metro())
        router = ShardRouter(spread_metro(), num_shards=4)
        rng = random.Random(23)
        extent = single.metro.extent_m
        regs = [
            MicRegistration.single_session(
                rng.randrange(30),
                rng.uniform(0.0, extent),
                rng.uniform(0.0, extent),
                0.0,
                120e6,
            )
            for _ in range(6)
        ]
        points = [
            (rng.uniform(0.0, extent), rng.uniform(0.0, extent))
            for _ in range(200)
        ]
        for reg in regs:
            single.register_mic(reg)
            router.register_mic(reg)
        assert router.channels_at_many(points, 60e6) == single.channels_at_many(
            points, 60e6
        )

    def test_spectrum_map_and_zone_affects_ride_the_same_path(self):
        single = WhiteSpaceDatabase(spread_metro())
        router = ShardRouter(spread_metro(), num_shards=4)
        reg = MicRegistration.single_session(7, 4_000.0, 4_000.0, 0.0, 60e6)
        for x, y in ((3_500.0, 3_900.0), (15_000.0, 15_000.0)):
            assert router.spectrum_map_at(x, y) == single.spectrum_map_at(x, y)
            assert router.zone_affects(reg, x, y) == single.zone_affects(
                reg, x, y
            )


class TestMicFanOut:
    def test_registration_reaches_only_touched_shards(self):
        router = ShardRouter(spread_metro(), num_shards=16)
        # A small zone deep inside one territory touches exactly one
        # shard; the base metro records it for ground truth either way.
        reg = MicRegistration.single_session(
            3, 2_500.0, 2_500.0, 0.0, 60e6, radius_m=200.0
        )
        before = len(router.metro.registrations)
        router.register_mic(reg)
        assert len(router.metro.registrations) == before + 1
        assert router.mic_registrations == 1
        touched = [
            shard.stats.mic_registrations for shard in router.shards
        ]
        assert sum(touched) == 1
        owner = router.shard_of(2_500.0, 2_500.0)
        assert touched[owner] == 1

    def test_boundary_zone_fans_out_to_every_touched_shard(self):
        router = ShardRouter(spread_metro(), num_shards=4)
        mid = router.metro.extent_m / 2
        reg = MicRegistration.single_session(
            3, mid, mid, 0.0, 60e6, radius_m=1_000.0
        )
        router.register_mic(reg)
        assert router.stats_dict()["registration_fanout"] == 4
        assert router.stats_dict()["mic_registrations"] == 1

    def test_invalidations_aggregate_across_shards(self):
        router = ShardRouter(spread_metro(), num_shards=4)
        mid = router.metro.extent_m / 2
        # Warm caches in all four shards around the center seam.
        for dx in (-150.0, 150.0):
            for dy in (-150.0, 150.0):
                router.channels_at(mid + dx, mid + dy, 1.0)
        dropped = router.register_mic(
            MicRegistration.single_session(
                3, mid, mid, 0.0, 60e6, radius_m=1_000.0
            )
        )
        assert dropped == 4
        assert router.aggregate_stats().invalidations == 4


class TestShardingWin:
    def test_candidates_per_query_decreases_with_shards(self):
        rng = random.Random(3)
        extent = 20_000.0
        points = [
            (rng.uniform(0.0, extent), rng.uniform(0.0, extent))
            for _ in range(1_500)
        ]
        scanned = []
        for num_shards in (1, 4, 16):
            router = ShardRouter(spread_metro(), num_shards=num_shards)
            router.channels_at_many(points, 0.0)
            stats = router.aggregate_stats()
            assert stats.queries == len(points)
            scanned.append(stats.candidates_scanned / stats.queries)
        assert scanned[0] > scanned[1] > scanned[2]

    def test_one_shard_matches_the_plain_database_index_exactly(self):
        # K=1 defaults to the service's own index granularity: same
        # counters, same answers — the router degenerates cleanly.
        single = WhiteSpaceDatabase(spread_metro())
        router = ShardRouter(spread_metro(), num_shards=1)
        rng = random.Random(9)
        points = [
            (rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0))
            for _ in range(400)
        ]
        assert router.channels_at_many(points) == single.channels_at_many(points)
        assert (
            router.aggregate_stats().candidates_scanned
            == single.stats.candidates_scanned
        )

    def test_per_shard_stats_sum_to_aggregate(self):
        router = ShardRouter(spread_metro(), num_shards=4)
        rng = random.Random(13)
        router.channels_at_many(
            [
                (rng.uniform(0.0, 20_000.0), rng.uniform(0.0, 20_000.0))
                for _ in range(200)
            ]
        )
        per_shard = router.per_shard_stats()
        total = router.aggregate_stats()
        assert sum(s["queries"] for s in per_shard) == total.queries == 200
        assert (
            sum(s["candidates_scanned"] for s in per_shard)
            == total.candidates_scanned
        )


class TestBatchCellRouting:
    """Router channels_in_cells: per-shard runs, loop-exact stats."""

    def test_batch_matches_sequential_per_shard(self):
        batched = ShardRouter(spread_metro(), num_shards=4)
        sequential = ShardRouter(spread_metro(), num_shards=4)
        # Cells hopping between shards force several single-cell runs;
        # repeats within and across runs exercise the caches.
        cells = [
            (10, 10), (11, 10), (150, 150), (10, 10), (150, 150),
            (11, 10), (150, 151), (10, 11), (10, 10),
        ]
        got = batched.channels_in_cells(cells, t_us=2.0)
        want = [
            sequential.channels_in_cell(qx, qy, 2.0) for qx, qy in cells
        ]
        assert got == want
        # Per-shard stats (not just the aggregate) must match the
        # sequential loop's: the batch forwards runs in order.
        assert batched.per_shard_stats() == sequential.per_shard_stats()
        assert batched.stats_dict() == sequential.stats_dict()
