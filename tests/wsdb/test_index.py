"""Tests for the uniform-grid spatial index, including the 10k-point
batch-query proof required of the wsdb subsystem: availability over a
dense query grid must come off the index (candidates inspected far below
the full-scan count) while agreeing exactly with the reference linear
scan, deterministically per seed."""

import random

import pytest

from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import TvStation
from repro.wsdb.index import GridIndex
from repro.wsdb.model import Metro, TvTransmitterSite, generate_metro
from repro.wsdb.service import WhiteSpaceDatabase


def small_site(uhf_index: int, x_m: float, y_m: float) -> TvTransmitterSite:
    # EIRP 5 dBm -> ~2.5 km protected contour under the default model.
    return TvTransmitterSite(TvStation(uhf_index, power_dbm=5.0), x_m, y_m)


class TestGridMechanics:
    def test_cell_of_clamps_to_plane(self):
        index = GridIndex(extent_m=10_000.0, cell_m=1_000.0)
        assert index.cell_of(-5.0, 500.0) == (0, 0)
        assert index.cell_of(99_999.0, 9_999.0) == (9, 9)

    def test_insert_buckets_bbox_cells(self):
        index = GridIndex(extent_m=10_000.0, cell_m=1_000.0)
        index.insert(small_site(0, 5_000.0, 5_000.0))
        assert len(index) == 1
        # Inside the contour: candidate present.
        assert len(index.candidates(5_500.0, 5_500.0)) == 1
        # Far corner: bucket untouched.
        assert len(index.candidates(500.0, 500.0)) == 0

    def test_covering_filters_bbox_false_positives(self):
        index = GridIndex(extent_m=10_000.0, cell_m=5_000.0)
        site = small_site(0, 2_500.0, 2_500.0)
        index.insert(site)
        # Same cell, outside the circle (cell corner is ~3.5 km from
        # the center, radius ~2.5 km).
        assert list(index.covering(4_990.0, 4_990.0)) == []
        assert list(index.covering(2_600.0, 2_600.0)) == [site]
        assert index.queries == 2
        assert index.candidates_scanned == 2

    def test_invalid_geometry_raises(self):
        with pytest.raises(SpectrumMapError):
            GridIndex(extent_m=0.0)
        with pytest.raises(SpectrumMapError):
            GridIndex(extent_m=100.0, cell_m=-1.0)


class TestBatchQueryProof:
    """The acceptance-gate test: 10k points, 100+ stations, no full scan."""

    @staticmethod
    def build_db(seed: int) -> WhiteSpaceDatabase:
        # 30 channels x 4 sites = 120 stations with ~1.8-3.5 km contours
        # spread over a 20 km plane: genuinely sparse occupancy.
        metro = generate_metro(
            range(30),
            seed=seed,
            sites_per_channel=(4, 4),
            eirp_range_dbm=(-5.0, 5.0),
        )
        return WhiteSpaceDatabase(metro, cache_resolution_m=10.0)

    @staticmethod
    def grid_points(extent_m: float, side: int = 100):
        step = extent_m / side
        return [
            (step / 2 + i * step, step / 2 + j * step)
            for i in range(side)
            for j in range(side)
        ]

    def test_10k_point_batch_hits_the_spatial_index(self):
        db = self.build_db(seed=42)
        points = self.grid_points(db.metro.extent_m)
        assert len(points) == 10_000
        assert len(db.metro.sites) >= 100

        responses = db.channels_at_many(points, t_us=0.0)

        assert db.stats.queries == 10_000
        full_scan = db.stats.queries * len(db.metro.sites)
        # The index must prune hard: a full per-query station scan
        # would inspect 1.2M candidates; the grid keeps it well under
        # a third of that (in practice ~10%).
        assert db.stats.candidates_scanned < 0.33 * full_scan
        assert db.stats.candidates_scanned > 0

        # Exactness: the indexed answers match a reference linear scan
        # over every incumbent, under the cell-granular area semantics
        # (a channel is denied when any contour intersects the query
        # point's quantization square).  Denial is therefore a superset
        # of the point-occupancy reference, never a subset.
        res = db.cache_resolution_m
        for point, channels in list(zip(points, responses))[::97]:
            qx, qy = db.cell_of(*point)
            expected = set()
            for site in db.metro.sites:
                nx = min(max(site.x_m, qx * res), (qx + 1) * res)
                ny = min(max(site.y_m, qy * res), (qy + 1) * res)
                if (site.x_m - nx) ** 2 + (site.y_m - ny) ** 2 <= site.radius_m**2:
                    expected.add(site.uhf_index)
            denied = set(range(30)) - set(channels)
            assert denied == expected
            assert denied >= db.metro.occupied_at(*point)

    def test_batch_results_deterministic_per_seed(self):
        points = self.grid_points(20_000.0)
        a = self.build_db(seed=42).channels_at_many(points)
        b = self.build_db(seed=42).channels_at_many(points)
        assert a == b
        c = self.build_db(seed=43).channels_at_many(points)
        assert a != c

    def test_index_agrees_with_reference_under_clamped_contours(self):
        # A contour centered off one edge still denies on-plane points.
        site = small_site(2, -1_000.0, 5_000.0)
        metro = Metro(extent_m=10_000.0, num_channels=5, sites=(site,))
        db = WhiteSpaceDatabase(metro)
        assert 2 not in db.channels_at(500.0, 5_000.0)
        assert 2 in db.channels_at(9_000.0, 5_000.0)


class TestCoveringRectConservativeness:
    """Property-style pin of the invariant sharding relies on.

    A cell-granular response must be safe to act on from *any*
    coordinate inside the cell: the contours ``covering_rect`` yields
    for a cell must be a superset of the contours ``covering`` yields
    for every point in that cell — equivalently, the channels free
    throughout the cell (``channels_in_cell``) must be a subset of the
    channels free at each point.  The cluster's ``ShardRouter`` leans
    on exactly this when it serves a routed point query from the
    owning shard's cell response.
    """

    def test_rect_candidates_superset_of_any_interior_point(self):
        rng = random.Random(20_090_817)
        for trial in range(40):
            extent = rng.uniform(4_000.0, 30_000.0)
            index = GridIndex(extent_m=extent, cell_m=rng.uniform(300.0, 4_000.0))
            sites = [
                TvTransmitterSite(
                    # EIRP -10..12 dBm: contour radii ~0.9-6 km, so
                    # cells are genuinely partially covered.
                    TvStation(rng.randrange(30), power_dbm=rng.uniform(-10.0, 12.0)),
                    rng.uniform(-0.1 * extent, 1.1 * extent),
                    rng.uniform(-0.1 * extent, 1.1 * extent),
                )
                for _ in range(rng.randrange(3, 25))
            ]
            index.extend(sites)
            res = rng.uniform(50.0, 500.0)
            for _ in range(10):
                qx = rng.randrange(-1, int(extent // res) + 2)
                qy = rng.randrange(-1, int(extent // res) + 2)
                x0, y0 = qx * res, qy * res
                rect_set = {
                    id(e) for e in index.covering_rect(x0, y0, x0 + res, y0 + res)
                }
                for _ in range(8):
                    px = rng.uniform(x0, x0 + res)
                    py = rng.uniform(y0, y0 + res)
                    point_set = {id(e) for e in index.covering(px, py)}
                    assert point_set <= rect_set, (
                        f"trial {trial}: covering({px}, {py}) yielded a "
                        "contour covering_rect missed for its cell"
                    )

    def test_cell_response_subset_of_any_interior_point_response(self):
        rng = random.Random(424_242)
        for _ in range(15):
            extent = rng.uniform(5_000.0, 20_000.0)
            metro = generate_metro(
                rng.sample(range(30), rng.randrange(4, 16)),
                extent_m=extent,
                seed=rng.randrange(1 << 30),
                eirp_range_dbm=(-8.0, 10.0),
            )
            db = WhiteSpaceDatabase(metro, cache_resolution_m=rng.uniform(50.0, 400.0))
            for _ in range(10):
                px = rng.uniform(-0.05 * extent, 1.05 * extent)
                py = rng.uniform(-0.05 * extent, 1.05 * extent)
                qx, qy = db.cell_of(px, py)
                cell_free = set(db.channels_in_cell(qx, qy))
                # The point's true free set, from the reference scan:
                # anything the cell response grants must be granted at
                # every interior point (conservative area semantics).
                point_free = set(range(metro.num_channels)) - metro.occupied_at(
                    px, py
                )
                assert cell_free <= point_free
                # And the relation is anchored to the right cell: the
                # cell response equals what a point query at (px, py)
                # itself returns (the point rides the cell path).
                assert db.channels_at(px, py) == tuple(sorted(cell_free))


class TestCandidatesMutationSafety:
    def test_candidates_returns_a_defensive_copy(self):
        index = GridIndex(extent_m=10_000.0, cell_m=1_000.0)
        site = small_site(0, 5_000.0, 5_000.0)
        index.insert(site)
        got = index.candidates(5_500.0, 5_500.0)
        assert isinstance(got, tuple)
        # A caller turning the result into a list and mutating it must
        # not be able to corrupt the live bucket.
        mutated = list(got)
        mutated.clear()
        assert len(index.candidates(5_500.0, 5_500.0)) == 1
        assert list(index.covering(5_500.0, 5_500.0)) == [site]
