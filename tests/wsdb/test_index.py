"""Tests for the uniform-grid spatial index, including the 10k-point
batch-query proof required of the wsdb subsystem: availability over a
dense query grid must come off the index (candidates inspected far below
the full-scan count) while agreeing exactly with the reference linear
scan, deterministically per seed."""

import pytest

from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import TvStation
from repro.wsdb.index import GridIndex
from repro.wsdb.model import Metro, TvTransmitterSite, generate_metro
from repro.wsdb.service import WhiteSpaceDatabase


def small_site(uhf_index: int, x_m: float, y_m: float) -> TvTransmitterSite:
    # EIRP 5 dBm -> ~2.5 km protected contour under the default model.
    return TvTransmitterSite(TvStation(uhf_index, power_dbm=5.0), x_m, y_m)


class TestGridMechanics:
    def test_cell_of_clamps_to_plane(self):
        index = GridIndex(extent_m=10_000.0, cell_m=1_000.0)
        assert index.cell_of(-5.0, 500.0) == (0, 0)
        assert index.cell_of(99_999.0, 9_999.0) == (9, 9)

    def test_insert_buckets_bbox_cells(self):
        index = GridIndex(extent_m=10_000.0, cell_m=1_000.0)
        index.insert(small_site(0, 5_000.0, 5_000.0))
        assert len(index) == 1
        # Inside the contour: candidate present.
        assert len(index.candidates(5_500.0, 5_500.0)) == 1
        # Far corner: bucket untouched.
        assert len(index.candidates(500.0, 500.0)) == 0

    def test_covering_filters_bbox_false_positives(self):
        index = GridIndex(extent_m=10_000.0, cell_m=5_000.0)
        site = small_site(0, 2_500.0, 2_500.0)
        index.insert(site)
        # Same cell, outside the circle (cell corner is ~3.5 km from
        # the center, radius ~2.5 km).
        assert list(index.covering(4_990.0, 4_990.0)) == []
        assert list(index.covering(2_600.0, 2_600.0)) == [site]
        assert index.queries == 2
        assert index.candidates_scanned == 2

    def test_invalid_geometry_raises(self):
        with pytest.raises(SpectrumMapError):
            GridIndex(extent_m=0.0)
        with pytest.raises(SpectrumMapError):
            GridIndex(extent_m=100.0, cell_m=-1.0)


class TestBatchQueryProof:
    """The acceptance-gate test: 10k points, 100+ stations, no full scan."""

    @staticmethod
    def build_db(seed: int) -> WhiteSpaceDatabase:
        # 30 channels x 4 sites = 120 stations with ~1.8-3.5 km contours
        # spread over a 20 km plane: genuinely sparse occupancy.
        metro = generate_metro(
            range(30),
            seed=seed,
            sites_per_channel=(4, 4),
            eirp_range_dbm=(-5.0, 5.0),
        )
        return WhiteSpaceDatabase(metro, cache_resolution_m=10.0)

    @staticmethod
    def grid_points(extent_m: float, side: int = 100):
        step = extent_m / side
        return [
            (step / 2 + i * step, step / 2 + j * step)
            for i in range(side)
            for j in range(side)
        ]

    def test_10k_point_batch_hits_the_spatial_index(self):
        db = self.build_db(seed=42)
        points = self.grid_points(db.metro.extent_m)
        assert len(points) == 10_000
        assert len(db.metro.sites) >= 100

        responses = db.channels_at_many(points, t_us=0.0)

        assert db.stats.queries == 10_000
        full_scan = db.stats.queries * len(db.metro.sites)
        # The index must prune hard: a full per-query station scan
        # would inspect 1.2M candidates; the grid keeps it well under
        # a third of that (in practice ~10%).
        assert db.stats.candidates_scanned < 0.33 * full_scan
        assert db.stats.candidates_scanned > 0

        # Exactness: the indexed answers match a reference linear scan
        # over every incumbent, under the cell-granular area semantics
        # (a channel is denied when any contour intersects the query
        # point's quantization square).  Denial is therefore a superset
        # of the point-occupancy reference, never a subset.
        res = db.cache_resolution_m
        for point, channels in list(zip(points, responses))[::97]:
            qx, qy = db.cell_of(*point)
            expected = set()
            for site in db.metro.sites:
                nx = min(max(site.x_m, qx * res), (qx + 1) * res)
                ny = min(max(site.y_m, qy * res), (qy + 1) * res)
                if (site.x_m - nx) ** 2 + (site.y_m - ny) ** 2 <= site.radius_m**2:
                    expected.add(site.uhf_index)
            denied = set(range(30)) - set(channels)
            assert denied == expected
            assert denied >= db.metro.occupied_at(*point)

    def test_batch_results_deterministic_per_seed(self):
        points = self.grid_points(20_000.0)
        a = self.build_db(seed=42).channels_at_many(points)
        b = self.build_db(seed=42).channels_at_many(points)
        assert a == b
        c = self.build_db(seed=43).channels_at_many(points)
        assert a != c

    def test_index_agrees_with_reference_under_clamped_contours(self):
        # A contour centered off one edge still denies on-plane points.
        site = small_site(2, -1_000.0, 5_000.0)
        metro = Metro(extent_m=10_000.0, num_channels=5, sites=(site,))
        db = WhiteSpaceDatabase(metro)
        assert 2 not in db.channels_at(500.0, 5_000.0)
        assert 2 in db.channels_at(9_000.0, 5_000.0)
