"""Tests for the roaming driver: the 100 m re-check rule, handoffs,
vacations, and the cell-granular cache's advantage on mobile workloads."""

import pytest

from repro.errors import SimulationError
from repro.spectrum.channels import WhiteFiChannel
from repro.wsdb.citywide import CityAp
from repro.wsdb.mobility import associate_nearest, simulate_roaming
from repro.wsdb.model import Metro, generate_metro
from repro.wsdb.service import WhiteSpaceDatabase


def empty_dial_db(extent_m: float = 2_000.0, **kwargs) -> WhiteSpaceDatabase:
    return WhiteSpaceDatabase(
        Metro(extent_m=extent_m, num_channels=30), **kwargs
    )


def dense_db(cache_resolution_m: float) -> WhiteSpaceDatabase:
    metro = generate_metro(range(0, 12), seed=99, extent_m=2_000.0)
    return WhiteSpaceDatabase(metro, cache_resolution_m=cache_resolution_m)


class TestValidation:
    def test_invalid_parameters_raise(self):
        db = empty_dial_db()
        with pytest.raises(SimulationError):
            simulate_roaming(db, 5, num_clients=0, duration_us=1e6, seed=0)
        with pytest.raises(SimulationError):
            simulate_roaming(db, 5, num_clients=3, duration_us=0.0, seed=0)
        with pytest.raises(SimulationError):
            simulate_roaming(
                db, 5, num_clients=3, duration_us=1e6, seed=0, speed_mps=0.0
            )
        with pytest.raises(SimulationError):
            simulate_roaming(
                db, 5, num_clients=3, duration_us=1e6, seed=0, tick_us=-1.0
            )
        with pytest.raises(SimulationError):
            simulate_roaming(
                db, 5, num_clients=3, duration_us=1e6, seed=0, recheck_m=0.0
            )
        with pytest.raises(SimulationError):
            simulate_roaming(db, 0, num_clients=3, duration_us=1e6, seed=0)


class TestAssociation:
    """Pins nearest-AP tie-breaking: equidistant APs resolve by index.

    ``associate_nearest`` is shared by the roaming and querystorm
    drivers; a tie broken by list order instead of ``ap_id`` would
    make runs depend on AP construction order and break the
    byte-identical parallel/sequential contract.
    """

    @staticmethod
    def live(aps):
        return [
            (ap, frozenset(ap.channel.spanned_indices))
            for ap in aps
            if ap.channel is not None
        ]

    @staticmethod
    def ap(ap_id, x_m, y_m, center=14):
        return CityAp(ap_id, x_m, y_m, channel=WhiteFiChannel(center, 5.0))

    def test_equidistant_aps_resolve_by_ascending_id(self):
        free = frozenset(range(10, 20))
        a, b = self.ap(3, 100.0, 0.0), self.ap(7, 0.0, 100.0)
        # Both 100 m away; the lower ap_id must win in either list order.
        assert associate_nearest(0.0, 0.0, free, self.live([a, b])) is a
        assert associate_nearest(0.0, 0.0, free, self.live([b, a])) is a

    def test_distance_beats_id(self):
        free = frozenset(range(10, 20))
        near, far = self.ap(9, 50.0, 0.0), self.ap(1, 100.0, 0.0)
        assert associate_nearest(0.0, 0.0, free, self.live([far, near])) is near

    def test_denied_channels_are_ineligible(self):
        # The nearest AP's channel is not in the client's response, so
        # the farther permitted AP wins; with no permitted AP at all
        # the client disconnects (None).
        near = self.ap(0, 10.0, 0.0, center=5)
        far = self.ap(1, 500.0, 0.0, center=14)
        free = frozenset(range(10, 20))
        assert associate_nearest(0.0, 0.0, free, self.live([near, far])) is far
        assert (
            associate_nearest(0.0, 0.0, frozenset(), self.live([near, far]))
            is None
        )


class TestRecheckRule:
    def test_stationary_clients_requery_on_ttl_expiry_only(self):
        # A client that (effectively) does not move never crosses a
        # quantization-square boundary, so the only legal re-query
        # trigger left is TTL expiry: exactly one query per TTL bucket
        # per client across the whole session.
        db = empty_dial_db(extent_m=20_000.0)  # ttl 60 s
        report = simulate_roaming(
            db,
            num_aps=5,
            num_clients=4,
            duration_us=300e6,  # buckets 0..5 inclusive at the ticks
            seed=11,
            speed_mps=1e-9,
        )
        assert report["requeries"] == 4 * 6

    def test_faster_clients_requery_more(self):
        def run(speed):
            return simulate_roaming(
                empty_dial_db(extent_m=20_000.0),
                num_aps=5,
                num_clients=6,
                duration_us=120e6,
                seed=11,
                speed_mps=speed,
            )["requeries"]

        # More boundary crossings per TTL window at higher speed.
        assert run(30.0) > run(3.0)

    def test_deterministic_per_seed(self):
        def run(seed):
            return simulate_roaming(
                dense_db(100.0),
                num_aps=8,
                num_clients=10,
                duration_us=120e6,
                seed=seed,
                mic_events=3,
            )

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestCellGranularAdvantage:
    def test_cell_cache_beats_per_coordinate_on_dense_mobility(self):
        # The acceptance gate: on a dense re-query workload (30 clients
        # roaming a 2 km metro) the cell-granular protocol serves
        # repeat visits to a quantization square from cache, while a
        # per-coordinate cache (resolution shrunk toward zero: every
        # query point its own cell) never sees the same key twice.
        def run(resolution_m):
            return simulate_roaming(
                dense_db(resolution_m),
                num_aps=8,
                num_clients=30,
                duration_us=300e6,
                seed=7,
                mic_events=4,
                recheck_m=100.0,
            )

        cell = run(100.0)
        point = run(0.001)
        # Same movement, same re-check rule, same query counts.
        assert cell["requeries"] == point["requeries"]
        assert cell["db"]["queries"] == point["db"]["queries"]
        assert cell["db"]["hit_rate"] > point["db"]["hit_rate"]
        assert cell["db"]["hit_rate"] > 0.2
        assert cell["db"]["cache_misses"] < point["db"]["cache_misses"]


class TestRoamingSession:
    def test_accounting_invariants(self):
        report = simulate_roaming(
            dense_db(100.0),
            num_aps=8,
            num_clients=12,
            duration_us=240e6,
            seed=3,
            mic_events=6,
        )
        ticks = int(report["duration_us"] // report["tick_us"]) + 1
        assert (
            report["connected_ticks"] + report["disconnected_ticks"]
            == report["num_clients"] * ticks
        )
        assert 0.0 <= report["connected_fraction"] <= 1.0
        assert report["violation_ticks"] <= report["connected_ticks"]
        assert 0.0 <= report["violation_free_fraction"] <= 1.0
        assert report["displaced_aps"] == (
            report["backup_recoveries"]
            + report["full_reassignments"]
            + report["outages"]
        )
        # Per-client rows sum to the session totals.
        per_client = report["per_client"]
        assert len(per_client) == 12
        assert sum(row[1] for row in per_client) == report["requeries"]
        assert sum(row[2] for row in per_client) == report["handoffs"]
        assert sum(row[3] for row in per_client) == report["vacations"]
        assert sum(row[4] for row in per_client) == report["connected_ticks"]

    def test_events_after_the_last_tick_are_still_registered(self):
        # duration_us need not be a tick multiple: events drawn in the
        # tail (ticks*tick_us, duration_us] fire after the loop, so the
        # database and the reported count stay consistent with
        # simulate_citywide's process-every-event semantics.
        report = simulate_roaming(
            empty_dial_db(extent_m=2_000.0),
            num_aps=4,
            num_clients=3,
            duration_us=90.7e6,
            seed=9,
            mic_events=40,
        )
        assert report["mic_events"] == 40
        assert report["db"]["mic_registrations"] == 40

    def test_mic_events_trigger_vacations_and_handoffs(self):
        # A tiny plane where every 1 km protection zone blankets whole
        # neighborhoods: roaming paths must run into zones.
        report = simulate_roaming(
            dense_db(100.0),
            num_aps=8,
            num_clients=30,
            duration_us=300e6,
            seed=7,
            mic_events=4,
        )
        assert report["mic_events"] == 4
        assert report["vacations"] > 0
        assert report["handoffs"] > 0
        assert report["db"]["invalidations"] > 0

    def test_clean_static_metro_has_no_violations(self):
        # With no mid-session registrations nothing can change between
        # re-checks: conservative cell responses make movement inside
        # a validated cell safe, so compliance is perfect.
        report = simulate_roaming(
            dense_db(100.0),
            num_aps=8,
            num_clients=10,
            duration_us=120e6,
            seed=5,
        )
        assert report["violation_ticks"] == 0
        assert report["violation_free_fraction"] == 1.0
