"""Tests for the wsdb spatial model (contours, metros, generators)."""

import random

import pytest

from repro import constants
from repro.errors import SpectrumMapError
from repro.spectrum.geodata import generate_locale
from repro.spectrum.incumbents import TvStation
from repro.wsdb.model import (
    Metro,
    MicRegistration,
    TvTransmitterSite,
    generate_metro,
    generate_metro_for_setting,
    protected_radius_m,
)


class TestProtectedRadius:
    def test_monotone_in_power(self):
        assert protected_radius_m(30.0) > protected_radius_m(20.0)

    def test_threshold_power_gives_reference_distance(self):
        radius = protected_radius_m(constants.TV_DETECTION_THRESHOLD_DBM)
        assert radius == pytest.approx(1.0)

    def test_sub_threshold_power_gives_negligible_contour(self):
        # Detectability is subsumed by the radius model: an EIRP below
        # the detection threshold protects less than the reference
        # distance, i.e. effectively nothing at metro scale.
        assert protected_radius_m(-120.0) < 1.0

    def test_invalid_exponent_raises(self):
        with pytest.raises(SpectrumMapError):
            protected_radius_m(30.0, path_loss_exponent=0.0)


class TestSitesAndRegistrations:
    def test_site_covers_inside_contour_only(self):
        site = TvTransmitterSite(TvStation(3, power_dbm=20.0), 0.0, 0.0)
        assert site.covers(site.radius_m * 0.9, 0.0)
        assert not site.covers(site.radius_m * 1.1, 0.0)

    def test_registration_protects_only_active_sessions(self):
        reg = MicRegistration.single_session(4, 0.0, 0.0, 100.0, 200.0)
        assert not reg.active_at(50.0)
        assert reg.active_at(150.0)
        assert not reg.active_at(200.0)  # half-open, like MicSession

    def test_registration_default_radius_is_fcc_scale(self):
        reg = MicRegistration.single_session(4, 0.0, 0.0, 0.0, 1.0)
        assert reg.covers(999.0, 0.0)
        assert not reg.covers(1_001.0, 0.0)


class TestMetro:
    def test_occupied_at_unions_tv_and_mics_without_double_count(self):
        # A mic registered on a channel already under a TV contour must
        # not make the channel count twice in the availability summary.
        site = TvTransmitterSite(TvStation(5, power_dbm=30.0), 100.0, 100.0)
        metro = Metro(extent_m=5_000.0, num_channels=10, sites=(site,))
        metro.add_registration(
            MicRegistration.single_session(5, 100.0, 100.0, 0.0, 1e9)
        )
        occupied = metro.occupied_at(100.0, 100.0, t_us=10.0)
        assert occupied == {5}
        assert metro.spectrum_map_at(100.0, 100.0, 10.0).num_free() == 9

    def test_out_of_range_incumbent_raises(self):
        with pytest.raises(SpectrumMapError):
            Metro(
                num_channels=5,
                sites=(TvTransmitterSite(TvStation(7), 0.0, 0.0),),
            )
        metro = Metro(num_channels=5)
        with pytest.raises(SpectrumMapError):
            metro.add_registration(
                MicRegistration.single_session(5, 0.0, 0.0, 0.0, 1.0)
            )

    def test_invalid_extent_raises(self):
        with pytest.raises(SpectrumMapError):
            Metro(extent_m=0.0)

    def test_tuple_registrations_normalized(self):
        # Passing registrations as a tuple (symmetric with sites) must
        # still leave add_registration working afterwards.
        reg = MicRegistration.single_session(2, 0.0, 0.0, 0.0, 1.0)
        metro = Metro(num_channels=5, registrations=(reg,))
        metro.add_registration(
            MicRegistration.single_session(3, 0.0, 0.0, 0.0, 1.0)
        )
        assert len(metro.registrations) == 2


class TestGenerateMetro:
    def test_dial_matches_requested_channels(self):
        metro = generate_metro({3, 7, 19}, seed=1)
        assert metro.dial() == (3, 7, 19)

    def test_sites_within_plane(self):
        metro = generate_metro(range(10), extent_m=8_000.0, seed=2)
        for site in metro.sites:
            assert 0.0 <= site.x_m <= 8_000.0
            assert 0.0 <= site.y_m <= 8_000.0

    def test_deterministic_per_seed(self):
        a = generate_metro(range(8), seed=9)
        b = generate_metro(range(8), seed=9)
        assert a.sites == b.sites
        assert a.sites != generate_metro(range(8), seed=10).sites

    def test_sites_per_channel_bounds(self):
        metro = generate_metro(range(6), seed=0, sites_per_channel=(2, 3))
        per_channel = {}
        for site in metro.sites:
            per_channel[site.uhf_index] = per_channel.get(site.uhf_index, 0) + 1
        assert all(2 <= n <= 3 for n in per_channel.values())
        with pytest.raises(SpectrumMapError):
            generate_metro(range(3), sites_per_channel=(0, 2))

    def test_availability_varies_across_plane(self):
        # Contours must not blanket the metro: somewhere between them a
        # dial channel is locally free.
        metro = generate_metro(range(12), seed=4)
        maps = {
            metro.spectrum_map_at(x, y)
            for x in (1_000.0, 10_000.0, 19_000.0)
            for y in (1_000.0, 10_000.0, 19_000.0)
        }
        assert len(maps) > 1


class TestGenerateMetroForSetting:
    def test_dial_follows_locale_generative_model(self):
        metro = generate_metro_for_setting("suburban", seed=7)
        locale = generate_locale("suburban", random.Random(7))
        assert metro.dial() == locale.spectrum_map.occupied_indices()

    def test_urban_denser_dial_than_rural(self):
        # The geodata bounds guarantee this for every seed (urban
        # occupies >= 13 channels, rural <= 8).
        for seed in (2009, 2010, 2011):
            urban = generate_metro_for_setting("urban", seed=seed)
            rural = generate_metro_for_setting("rural", seed=seed)
            assert len(urban.dial()) > len(rural.dial())
