"""Tests for the querystorm driver: storm accounting, determinism,
admission starvation, and the push-vs-pull violation window."""

import pytest

from repro.errors import SimulationError
from repro.sim.rng import stream_seed
from repro.wsdb.cluster import ShardRouter, simulate_querystorm
from repro.wsdb.model import Metro, generate_metro


def dense_router(
    num_shards: int = 4, extent_m: float = 2_500.0, seed: int = 99
) -> ShardRouter:
    metro = generate_metro(
        range(12), extent_m=extent_m, seed=seed, num_channels=30
    )
    return ShardRouter(metro, num_shards=num_shards)


def empty_router(num_shards: int = 4) -> ShardRouter:
    return ShardRouter(
        Metro(extent_m=2_000.0, num_channels=30), num_shards=num_shards
    )


class TestValidation:
    def test_invalid_parameters_raise(self):
        router = empty_router()
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=-1, duration_us=1e6, seed=0
            )
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=3, duration_us=0.0, seed=0
            )
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=3, duration_us=1e6, seed=0,
                offered_qps=-1.0,
            )
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=3, duration_us=1e6, seed=0,
                speed_mps=0.0,
            )
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=3, duration_us=1e6, seed=0,
                recheck_m=-10.0,
            )
        with pytest.raises(SimulationError):
            simulate_querystorm(
                router, 5, num_clients=3, duration_us=1e6, seed=0,
                policy="bogus",
            )


class TestStormAccounting:
    def test_offered_load_is_delivered(self):
        report = simulate_querystorm(
            empty_router(),
            num_aps=5,
            num_clients=0,
            duration_us=60e6,
            seed=3,
            offered_qps=100.0,
        )
        # 100 qps accrued at each of the 61 tick fences of [0, 60 s]
        # (the loop is boundary-inclusive, like the roaming driver's).
        assert report["storm_queries"] == 6_100
        assert report["frontend"]["requests"] == 6_100
        assert report["frontend"]["shed"] == 0
        # Clientless runs score vacuously clean compliance.
        assert report["connected_fraction"] == 0.0
        assert report["violation_free_fraction"] == 1.0

    def test_db_accounting_is_honest(self):
        report = simulate_querystorm(
            dense_router(),
            num_aps=6,
            num_clients=10,
            duration_us=60e6,
            seed=5,
            offered_qps=50.0,
            mic_events=2,
        )
        db = report["db"]
        assert db["cache_hits"] + db["cache_misses"] == db["queries"]
        front = report["frontend"]
        assert front["admitted"] == front["requests"]
        # Per-shard snapshots sum to the aggregate.
        assert sum(s["queries"] for s in report["per_shard"]) == db["queries"]
        assert report["mic_events"] == 2
        assert report["db"]["mic_registrations"] == 2

    def test_deterministic_per_seed_and_shard_invariant(self):
        def run(seed, shards):
            return simulate_querystorm(
                dense_router(num_shards=shards),
                num_aps=6,
                num_clients=8,
                duration_us=60e6,
                seed=seed,
                offered_qps=80.0,
                mic_events=2,
            )

        a, b = run(11, 4), run(11, 4)
        assert a == b
        assert run(12, 4) != a
        # Sharding is a service-tier choice: the physics — mobility,
        # compliance, handoffs — are identical at any shard count.
        one = run(11, 1)
        for key in (
            "requeries",
            "handoffs",
            "vacations",
            "violation_ticks",
            "connected_ticks",
        ):
            assert one[key] == a[key], key


class TestAdmissionStarvation:
    def test_storm_starves_client_rechecks_under_reject(self):
        report = simulate_querystorm(
            dense_router(),
            num_aps=6,
            num_clients=10,
            duration_us=60e6,
            seed=5,
            offered_qps=300.0,
            rate_limit_qps=100.0,
            mic_events=0,
        )
        assert report["frontend"]["shed"] > 0
        assert report["deferred_requeries"] > 0
        assert report["frontend"]["served_stale"] == 0

    def test_serve_stale_relieves_deferrals(self):
        def run(policy):
            return simulate_querystorm(
                dense_router(),
                num_aps=6,
                num_clients=10,
                duration_us=60e6,
                seed=5,
                offered_qps=300.0,
                rate_limit_qps=100.0,
                policy=policy,
            )

        reject, stale = run("reject"), run("serve-stale")
        assert stale["frontend"]["served_stale"] > 0
        assert stale["deferred_requeries"] < reject["deferred_requeries"]


class TestPushVsPull:
    def run(self, push, seed=2009):
        return simulate_querystorm(
            dense_router(seed=seed),
            num_aps=10,
            num_clients=60,
            duration_us=300e6,
            seed=seed,
            offered_qps=100.0,
            push=push,
            mic_events=12,
            speed_mps=6.0,
        )

    @pytest.mark.slow
    def test_push_strictly_shrinks_the_violation_window(self):
        pull, push = self.run(False), self.run(True)
        assert pull["violation_ticks"] > 0
        assert push["violation_ticks"] < pull["violation_ticks"]
        assert push["push_refreshes"] > 0
        assert push["push_stats"]["notifications"] > 0
        # Pull-only runs carry no registry at all.
        assert pull["push_stats"] is None
        assert pull["push_refreshes"] == 0

    def test_pushed_clients_subscribe_cell_granularly(self):
        report = simulate_querystorm(
            dense_router(),
            num_aps=5,
            num_clients=6,
            duration_us=30e6,
            seed=5,
            push=True,
        )
        stats = report["push_stats"]
        assert stats["subscriptions"] == 6
        # Moving clients re-subscribe as they cross cells.
        assert stats["moves"] > 0


class TestSeedStreams:
    def test_driver_streams_do_not_replay_roaming_streams(self):
        # querystorm and roaming label their client streams differently,
        # so the same master seed produces different (but individually
        # deterministic) paths — no accidental cross-driver coupling.
        from repro.wsdb.mobility import simulate_roaming
        from repro.wsdb.service import WhiteSpaceDatabase

        seed = 17
        metro_seed = stream_seed(seed, "shared-metro")
        storm = simulate_querystorm(
            ShardRouter(
                generate_metro(range(12), extent_m=2_500.0, seed=metro_seed),
                num_shards=1,
            ),
            num_aps=5,
            num_clients=4,
            duration_us=30e6,
            seed=seed,
        )
        roam = simulate_roaming(
            WhiteSpaceDatabase(
                generate_metro(range(12), extent_m=2_500.0, seed=metro_seed)
            ),
            num_aps=5,
            num_clients=4,
            duration_us=30e6,
            seed=seed,
        )
        assert storm["requeries"] != roam["requeries"] or (
            storm["handoffs"] != roam["handoffs"]
        )
