"""Tests for the WhiteSpaceDatabase façade: cell-granular responses,
caching, TTL-bucket expiry, and time-aware invalidation."""

import pytest

from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import TvStation
from repro.wsdb.model import Metro, MicRegistration, TvTransmitterSite
from repro.wsdb.service import WhiteSpaceDatabase


def one_station_metro() -> Metro:
    # A ~2511.9 m contour on channel 3 in the middle of a 10 km plane.
    return Metro(
        extent_m=10_000.0,
        num_channels=8,
        sites=(TvTransmitterSite(TvStation(3, power_dbm=5.0), 5_000.0, 5_000.0),),
    )


class TestCellGranularResponses:
    def test_response_covers_the_whole_cell_conservatively(self):
        # The contour edge sits at x ~= 7511.9.  (7520, 5000) is outside
        # the contour itself, but its 100 m cell [7500, 7600) reaches
        # back to x=7500, inside the contour — the area response denies
        # the channel anywhere a contour clips the cell.
        db = WhiteSpaceDatabase(one_station_metro())
        assert 3 not in db.metro.occupied_at(7_520.0, 5_000.0)
        assert 3 not in db.channels_at(7_520.0, 5_000.0)
        # One cell further out the contour no longer touches: free.
        assert 3 in db.channels_at(7_620.0, 5_000.0)

    def test_channels_at_rides_channels_in_cell(self):
        db = WhiteSpaceDatabase(one_station_metro())
        direct = db.channels_in_cell(*db.cell_of(5_110.0, 5_150.0))
        assert db.channels_at(5_105.0, 5_177.0) == direct
        assert db.stats.queries == 2
        assert db.stats.cache_hits == 1

    def test_cache_disabled_identical_answers_with_zero_hits(self):
        # The compute path is canonical per cell, so disabling the
        # cache changes performance counters only, never answers.
        cached = WhiteSpaceDatabase(one_station_metro())
        uncached = WhiteSpaceDatabase(one_station_metro(), cache_capacity=0)
        points = [
            (x, y)
            for x in (-250.0, 0.0, 2_505.0, 5_050.0, 7_520.0, 9_990.0)
            for y in (4_980.0, 5_020.0, 7_511.0)
        ]
        for _ in range(2):
            assert cached.channels_at_many(points) == uncached.channels_at_many(
                points
            )
        assert uncached.stats.cache_hits == 0
        assert uncached.stats.cache_misses == uncached.stats.queries
        assert cached.stats.cache_hits > 0

    def test_negative_coordinates_get_their_own_cells(self):
        # Floor quantization: (-50, -50) lives in cell (-1, -1), not in
        # the origin's cell — truncation toward zero would alias the
        # two and serve one side the other's response.
        db = WhiteSpaceDatabase(one_station_metro())
        assert db.cell_of(-50.0, -50.0) == (-1, -1)
        assert db.cell_of(50.0, 50.0) == (0, 0)
        db.channels_at(-50.0, -50.0)
        db.channels_at(-1.0, -99.0)  # same negative cell: a hit
        assert db.stats.cache_hits == 1
        db.channels_at(50.0, 50.0)  # across the origin: a different slot
        assert db.stats.cache_misses == 2

    def test_mic_registered_at_exact_plane_border(self):
        # The grid index clamps off-plane and border coordinates to the
        # edge cells; a venue registered exactly at (extent, extent)
        # must still deny the corner and leave the far corner alone.
        db = WhiteSpaceDatabase(one_station_metro())
        extent = db.metro.extent_m
        db.register_mic(
            MicRegistration.single_session(5, extent, extent, 0.0, 1e9)
        )
        assert 5 not in db.channels_at(extent - 10.0, extent - 10.0, t_us=1.0)
        assert 5 not in db.channels_at(extent, extent, t_us=1.0)
        assert 5 in db.channels_at(10.0, 10.0, t_us=1.0)


class TestResponseCache:
    def test_repeat_query_hits(self):
        db = WhiteSpaceDatabase(one_station_metro())
        first = db.channels_at(5_100.0, 5_100.0, t_us=0.0)
        second = db.channels_at(5_100.0, 5_100.0, t_us=1.0)
        assert first == second
        assert 3 not in first
        assert db.stats.queries == 2
        assert db.stats.cache_hits == 1
        assert db.stats.cache_misses == 1

    def test_nearby_points_share_a_quantized_response(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_resolution_m=100.0)
        db.channels_at(5_110.0, 5_110.0)
        db.channels_at(5_190.0, 5_190.0)  # same 100 m square
        assert db.stats.cache_hits == 1

    def test_ttl_bucket_expires_responses(self):
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(5_100.0, 5_100.0, t_us=0.0)
        db.channels_at(5_100.0, 5_100.0, t_us=1_500.0)  # next bucket
        assert db.stats.cache_hits == 0
        assert db.stats.cache_misses == 2

    def test_lru_eviction(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_capacity=2)
        for x in (1_000.0, 2_000.0, 3_000.0):
            db.channels_at(x, 1_000.0)
        assert db.stats.evictions == 1
        # The oldest entry was evicted: re-querying it misses.
        db.channels_at(1_000.0, 1_000.0)
        assert db.stats.cache_misses == 4

    def test_capacity_zero_disables_caching(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_capacity=0)
        db.channels_at(5_100.0, 5_100.0)
        db.channels_at(5_100.0, 5_100.0)
        assert db.stats.cache_hits == 0
        assert db.stats.cache_misses == 2

    def test_caching_never_changes_availability(self):
        cached = WhiteSpaceDatabase(one_station_metro())
        uncached = WhiteSpaceDatabase(one_station_metro(), cache_capacity=0)
        points = [(x, y) for x in range(0, 10_000, 500) for y in (4_000.0, 5_000.0)]
        assert cached.channels_at_many(points) == uncached.channels_at_many(points)
        assert cached.channels_at_many(points) == uncached.channels_at_many(points)
        assert cached.stats.cache_hits > 0

    def test_invalid_parameters_raise(self):
        for kwargs in (
            {"ttl_us": 0.0},
            {"cache_resolution_m": 0.0},
            {"cache_capacity": -1},
        ):
            with pytest.raises(SpectrumMapError):
                WhiteSpaceDatabase(one_station_metro(), **kwargs)


class TestTtlExpiry:
    def test_expired_buckets_are_purged_when_time_advances(self):
        # Dead responses must not occupy LRU capacity: once the
        # observed TTL bucket advances, everything behind it is purged
        # (counted as expirations, not evictions).
        db = WhiteSpaceDatabase(
            one_station_metro(), ttl_us=1_000.0, cache_capacity=4
        )
        for x in (1_000.0, 2_000.0, 3_000.0):
            db.channels_at(x, 1_000.0, t_us=0.0)
        assert len(db._cache) == 3
        db.channels_at(1_000.0, 1_000.0, t_us=1_500.0)  # next bucket
        assert db.stats.expirations == 3
        assert len(db._cache) == 1
        # The freed capacity holds live responses without evicting.
        for x in (2_000.0, 3_000.0, 4_000.0):
            db.channels_at(x, 1_000.0, t_us=1_500.0)
        assert len(db._cache) == 4
        assert db.stats.evictions == 0

    def test_live_entries_survive_the_purge(self):
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=1_200.0)  # bucket 1
        db.channels_at(2_000.0, 1_000.0, t_us=1_500.0)  # bucket 1 too
        assert db.stats.expirations == 0
        db.channels_at(1_000.0, 1_000.0, t_us=1_900.0)
        assert db.stats.cache_hits == 1

    def test_register_mic_does_not_count_expired_entries(self):
        # Regression: invalidation used to scan (and drop) responses
        # from long-dead buckets, polluting stats.invalidations.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=0.0)  # bucket 0
        db.channels_at(1_000.0, 1_000.0, t_us=5_500.0)  # bucket 5
        assert db.stats.expirations == 1
        db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 0.0, 1e9)
        )
        # Only the live bucket-5 response is invalidated.
        assert db.stats.invalidations == 1


class TestTimeAwareInvalidation:
    def test_buckets_wholly_before_the_session_are_kept(self):
        # Two live responses for the same cell in buckets 0 and 2; a
        # session starting at t=2500 can only change answers served
        # from bucket 2 on — bucket 0's window [0, 1000) ended long
        # before the mic goes live, so dropping it would only force a
        # recompute to the same answer and misreport the counter.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=2_200.0)  # bucket 2 (live)
        db.channels_at(1_000.0, 1_000.0, t_us=100.0)  # bucket 0 (late query)
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 2_500.0, 5_000.0)
        )
        assert dropped == 1
        assert db.stats.invalidations == 1
        # The bucket-0 response is still served from cache.
        db.channels_at(1_000.0, 1_000.0, t_us=200.0)
        assert db.stats.cache_hits == 1

    def test_buckets_wholly_after_the_session_are_kept(self):
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=2_500.0)  # bucket 2
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 900.0)
        )
        # The session lives and dies inside bucket 0: the cached
        # bucket-2 response (mic inactive throughout) is untouched.
        assert dropped == 0
        assert db.stats.invalidations == 0
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=2_600.0)
        assert db.stats.cache_hits == 1

    def test_session_ending_exactly_at_bucket_start_is_kept(self):
        # Sessions are half-open [start, end): one ending exactly at a
        # bucket boundary is never active inside that bucket, so the
        # bucket's cached response must survive the registration.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=2_500.0)  # bucket 2
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 2_000.0)
        )
        assert dropped == 0
        assert db.stats.invalidations == 0
        db.channels_at(1_000.0, 1_000.0, t_us=2_600.0)
        assert db.stats.cache_hits == 1

    def test_overlapping_bucket_is_invalidated(self):
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(1_000.0, 1_000.0, t_us=2_500.0)  # bucket 2
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 2_900.0, 9_000.0)
        )
        assert dropped == 1
        assert 5 not in db.channels_at(1_000.0, 1_000.0, t_us=2_950.0)


class TestZoneAffects:
    def test_cell_touch_beats_point_containment(self):
        # A device outside the zone whose response cell the zone clips
        # is still served the denying cell response — protocol-level
        # coverage checks must agree with what the cache serves.
        db = WhiteSpaceDatabase(one_station_metro())
        registration = MicRegistration.single_session(
            5, 5.0, 50.0, 0.0, 1e9
        )
        db.register_mic(registration)
        # (1095, 50): 1090 m from the venue (outside the 1 km zone)
        # but cell [1000, 1100) reaches back to 995 m.
        assert not registration.covers(1_095.0, 50.0)
        assert db.zone_affects(registration, 1_095.0, 50.0)
        assert 5 not in db.channels_at(1_095.0, 50.0, t_us=1.0)
        # Two cells out neither the point nor the cell is touched.
        assert not db.zone_affects(registration, 1_250.0, 50.0)
        assert 5 in db.channels_at(1_250.0, 50.0, t_us=1.0)


class TestMicRegistration:
    def test_registration_invalidates_covered_responses_only(self):
        db = WhiteSpaceDatabase(one_station_metro())
        inside = (1_000.0, 1_000.0)
        outside = (9_000.0, 9_000.0)
        assert 5 in db.channels_at(*inside)
        db.channels_at(*outside)
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_200.0, 1_000.0, 0.0, 1e9)
        )
        assert dropped == 1
        assert db.stats.invalidations == 1
        assert db.stats.mic_registrations == 1
        # Fresh answer inside the zone excludes the mic channel...
        assert 5 not in db.channels_at(*inside, t_us=10.0)
        # ...while the far response was untouched (served from cache).
        assert 5 in db.channels_at(*outside, t_us=10.0)
        assert db.stats.cache_hits == 1

    def test_invalidation_is_cell_granular(self):
        # Regression: cached responses are shared across a whole 100 m
        # quantization square, so invalidation must drop any entry
        # whose *square* touches the zone — even when the coordinate
        # that produced it lies just outside.  Here the response is
        # produced at (1095, 50), 1090 m from the venue (outside the
        # 1 km zone), but its square also contains (1005, 50), which
        # is inside.
        db = WhiteSpaceDatabase(one_station_metro(), cache_resolution_m=100.0)
        assert 5 in db.channels_at(1_095.0, 50.0)
        dropped = db.register_mic(
            MicRegistration.single_session(5, 5.0, 50.0, 0.0, 1e9)
        )
        assert dropped == 1
        # The inside point shares the cached square; it must get a
        # fresh response, not the stale pre-registration one.
        assert 5 not in db.channels_at(1_005.0, 50.0, t_us=10.0)

    def test_inactive_session_not_protected(self):
        # TTL below the session granularity: every query sees the
        # current session state.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=10.0)
        db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 200.0)
        )
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=50.0)
        assert 5 not in db.channels_at(1_000.0, 1_000.0, t_us=150.0)
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=250.0)

    def test_session_edge_staleness_bounded_by_ttl(self):
        # Within one TTL bucket a cached response may lag a *session*
        # edge of an already-registered mic (the staleness the TTL
        # contract allows); explicit registrations invalidate
        # immediately, so this never applies to new incumbents.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 2_000.0)
        )
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=50.0)
        # Same bucket: the pre-onset response is served unchanged.
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=150.0)
        assert db.stats.cache_hits == 1
        # Next bucket: the edge is visible.
        assert 5 not in db.channels_at(1_000.0, 1_000.0, t_us=1_150.0)

    def test_mic_on_tv_channel_does_not_double_count(self):
        # The wsdb-level mirror of the IncumbentField regression: a mic
        # registered on a channel already under a TV contour changes
        # nothing in the availability summary.
        db = WhiteSpaceDatabase(one_station_metro())
        point = (5_100.0, 5_100.0)
        before = db.channels_at(*point)
        db.register_mic(
            MicRegistration.single_session(3, 5_100.0, 5_100.0, 0.0, 1e9)
        )
        after = db.channels_at(*point, t_us=10.0)
        assert before == after
        assert len(after) == db.metro.num_channels - 1

    def test_spectrum_map_round_trip(self):
        db = WhiteSpaceDatabase(one_station_metro())
        smap = db.spectrum_map_at(5_100.0, 5_100.0)
        assert smap.occupied_indices() == (3,)
        assert len(smap) == 8


class TestBatchCellQueries:
    """channels_in_cells must be exactly a channels_in_cell loop."""

    def batch_cells(self):
        # Mixed hits, misses, duplicates, and an off-plane cell.
        return [(50, 50), (75, 50), (50, 50), (75, 51), (-1, -1), (50, 50)]

    def test_batch_matches_sequential_answers_and_stats(self):
        batched = WhiteSpaceDatabase(one_station_metro())
        sequential = WhiteSpaceDatabase(one_station_metro())
        cells = self.batch_cells()
        got = batched.channels_in_cells(cells, t_us=5.0)
        want = [sequential.channels_in_cell(qx, qy, 5.0) for qx, qy in cells]
        assert got == want
        assert batched.stats.as_dict() == sequential.stats.as_dict()
        assert batched.stats.queries == len(cells)
        assert batched.stats.cache_hits > 0

    def test_batch_matches_sequential_under_eviction_pressure(self):
        # A 2-slot LRU: identical eviction counters require identical
        # recency ordering, not just identical totals.
        batched = WhiteSpaceDatabase(one_station_metro(), cache_capacity=2)
        sequential = WhiteSpaceDatabase(one_station_metro(), cache_capacity=2)
        cells = self.batch_cells() + [(10, 10), (50, 50), (75, 50)]
        got = batched.channels_in_cells(cells, t_us=5.0)
        want = [sequential.channels_in_cell(qx, qy, 5.0) for qx, qy in cells]
        assert got == want
        assert batched.stats.evictions > 0
        assert batched.stats.as_dict() == sequential.stats.as_dict()

    def test_batch_purges_expired_buckets_once(self):
        db = WhiteSpaceDatabase(one_station_metro())
        db.channels_in_cells([(50, 50), (60, 60)], t_us=0.0)
        # One TTL bucket later the old responses purge on entry.
        db.channels_in_cells([(50, 50)], t_us=db.ttl_us + 1.0)
        assert db.stats.expirations == 2

    def test_channels_at_many_rides_the_batch_path(self):
        batched = WhiteSpaceDatabase(one_station_metro())
        pointwise = WhiteSpaceDatabase(one_station_metro())
        points = [(5_050.0, 5_050.0), (5_060.0, 5_070.0), (7_520.0, 5_000.0)]
        got = batched.channels_at_many(points)
        want = [pointwise.channels_at(x, y) for x, y in points]
        assert got == want
        assert batched.stats.as_dict() == pointwise.stats.as_dict()
