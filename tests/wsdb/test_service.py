"""Tests for the WhiteSpaceDatabase façade: caching, TTL, invalidation."""

import pytest

from repro.errors import SpectrumMapError
from repro.spectrum.incumbents import TvStation
from repro.wsdb.model import Metro, MicRegistration, TvTransmitterSite
from repro.wsdb.service import WhiteSpaceDatabase


def one_station_metro() -> Metro:
    # A ~2.5 km contour on channel 3 in the middle of a 10 km plane.
    return Metro(
        extent_m=10_000.0,
        num_channels=8,
        sites=(TvTransmitterSite(TvStation(3, power_dbm=5.0), 5_000.0, 5_000.0),),
    )


class TestResponseCache:
    def test_repeat_query_hits(self):
        db = WhiteSpaceDatabase(one_station_metro())
        first = db.channels_at(5_100.0, 5_100.0, t_us=0.0)
        second = db.channels_at(5_100.0, 5_100.0, t_us=1.0)
        assert first == second
        assert 3 not in first
        assert db.stats.queries == 2
        assert db.stats.cache_hits == 1
        assert db.stats.cache_misses == 1

    def test_nearby_points_share_a_quantized_response(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_resolution_m=100.0)
        db.channels_at(5_110.0, 5_110.0)
        db.channels_at(5_190.0, 5_190.0)  # same 100 m square
        assert db.stats.cache_hits == 1

    def test_ttl_bucket_expires_responses(self):
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.channels_at(5_100.0, 5_100.0, t_us=0.0)
        db.channels_at(5_100.0, 5_100.0, t_us=1_500.0)  # next bucket
        assert db.stats.cache_hits == 0
        assert db.stats.cache_misses == 2

    def test_lru_eviction(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_capacity=2)
        for x in (1_000.0, 2_000.0, 3_000.0):
            db.channels_at(x, 1_000.0)
        assert db.stats.evictions == 1
        # The oldest entry was evicted: re-querying it misses.
        db.channels_at(1_000.0, 1_000.0)
        assert db.stats.cache_misses == 4

    def test_capacity_zero_disables_caching(self):
        db = WhiteSpaceDatabase(one_station_metro(), cache_capacity=0)
        db.channels_at(5_100.0, 5_100.0)
        db.channels_at(5_100.0, 5_100.0)
        assert db.stats.cache_hits == 0
        assert db.stats.cache_misses == 2

    def test_caching_never_changes_availability(self):
        cached = WhiteSpaceDatabase(one_station_metro())
        uncached = WhiteSpaceDatabase(one_station_metro(), cache_capacity=0)
        points = [(x, y) for x in range(0, 10_000, 500) for y in (4_000.0, 5_000.0)]
        assert cached.channels_at_many(points) == uncached.channels_at_many(points)
        assert cached.channels_at_many(points) == uncached.channels_at_many(points)
        assert cached.stats.cache_hits > 0

    def test_invalid_parameters_raise(self):
        for kwargs in (
            {"ttl_us": 0.0},
            {"cache_resolution_m": 0.0},
            {"cache_capacity": -1},
        ):
            with pytest.raises(SpectrumMapError):
                WhiteSpaceDatabase(one_station_metro(), **kwargs)


class TestMicRegistration:
    def test_registration_invalidates_covered_responses_only(self):
        db = WhiteSpaceDatabase(one_station_metro())
        inside = (1_000.0, 1_000.0)
        outside = (9_000.0, 9_000.0)
        assert 5 in db.channels_at(*inside)
        db.channels_at(*outside)
        dropped = db.register_mic(
            MicRegistration.single_session(5, 1_200.0, 1_000.0, 0.0, 1e9)
        )
        assert dropped == 1
        assert db.stats.invalidations == 1
        assert db.stats.mic_registrations == 1
        # Fresh answer inside the zone excludes the mic channel...
        assert 5 not in db.channels_at(*inside, t_us=10.0)
        # ...while the far response was untouched (served from cache).
        assert 5 in db.channels_at(*outside, t_us=10.0)
        assert db.stats.cache_hits == 1

    def test_invalidation_is_cell_granular(self):
        # Regression: cached responses are shared across a whole 100 m
        # quantization square, so invalidation must drop any entry
        # whose *square* touches the zone — even when the coordinate
        # that produced it lies just outside.  Here the response is
        # produced at (1095, 50), 1090 m from the venue (outside the
        # 1 km zone), but its square also contains (1005, 50), which
        # is inside.
        db = WhiteSpaceDatabase(one_station_metro(), cache_resolution_m=100.0)
        assert 5 in db.channels_at(1_095.0, 50.0)
        dropped = db.register_mic(
            MicRegistration.single_session(5, 5.0, 50.0, 0.0, 1e9)
        )
        assert dropped == 1
        # The inside point shares the cached square; it must get a
        # fresh response, not the stale pre-registration one.
        assert 5 not in db.channels_at(1_005.0, 50.0, t_us=10.0)

    def test_inactive_session_not_protected(self):
        # TTL below the session granularity: every query sees the
        # current session state.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=10.0)
        db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 200.0)
        )
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=50.0)
        assert 5 not in db.channels_at(1_000.0, 1_000.0, t_us=150.0)
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=250.0)

    def test_session_edge_staleness_bounded_by_ttl(self):
        # Within one TTL bucket a cached response may lag a *session*
        # edge of an already-registered mic (the staleness the TTL
        # contract allows); explicit registrations invalidate
        # immediately, so this never applies to new incumbents.
        db = WhiteSpaceDatabase(one_station_metro(), ttl_us=1_000.0)
        db.register_mic(
            MicRegistration.single_session(5, 1_000.0, 1_000.0, 100.0, 2_000.0)
        )
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=50.0)
        # Same bucket: the pre-onset response is served unchanged.
        assert 5 in db.channels_at(1_000.0, 1_000.0, t_us=150.0)
        assert db.stats.cache_hits == 1
        # Next bucket: the edge is visible.
        assert 5 not in db.channels_at(1_000.0, 1_000.0, t_us=1_150.0)

    def test_mic_on_tv_channel_does_not_double_count(self):
        # The wsdb-level mirror of the IncumbentField regression: a mic
        # registered on a channel already under a TV contour changes
        # nothing in the availability summary.
        db = WhiteSpaceDatabase(one_station_metro())
        point = (5_100.0, 5_100.0)
        before = db.channels_at(*point)
        db.register_mic(
            MicRegistration.single_session(3, 5_100.0, 5_100.0, 0.0, 1e9)
        )
        after = db.channels_at(*point, t_us=10.0)
        assert before == after
        assert len(after) == db.metro.num_channels - 1

    def test_spectrum_map_round_trip(self):
        db = WhiteSpaceDatabase(one_station_metro())
        smap = db.spectrum_map_at(5_100.0, 5_100.0)
        assert smap.occupied_indices() == (3,)
        assert len(smap) == 8
