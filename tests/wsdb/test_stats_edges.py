"""Zero-denominator pinning: every stats ratio reports cleanly at zero.

The wsdb stack exposes ratio properties (``hit_rate``, ``shed_rate``,
``candidates_per_query``) and report fractions
(``connected_fraction``, ``violation_free_fraction``) whose
denominators are all zero on a fleet that never queried.  These tests
pin the convention — a zero denominator reports 0.0 (or the vacuous
1.0 for violation-free), never raises — across the service, router,
frontend, and both run drivers, including the degenerate 0-client
querystorm.
"""

import pytest

from repro.wsdb.cluster.frontend import BatchFrontend, FrontendStats
from repro.wsdb.cluster.push import PushRegistry, PushStats
from repro.wsdb.cluster.querystorm import simulate_querystorm
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.mobility import ENGINES
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase, WsdbStats
from repro.telemetry import MetricsRegistry


def fresh_metro(seed: int = 7):
    return generate_metro(range(0, 10), seed=seed, extent_m=2_000.0)


class TestZeroDenominators:
    def test_wsdb_stats_zero_state(self):
        stats = WsdbStats()
        assert stats.hit_rate == 0.0
        snap = stats.as_dict()
        assert snap["hit_rate"] == 0.0
        assert snap["queries"] == 0

    def test_frontend_stats_zero_state(self):
        stats = FrontendStats()
        assert stats.shed_rate == 0.0
        assert stats.as_dict()["shed_rate"] == 0.0

    def test_push_stats_zero_state(self):
        assert all(v == 0 for v in PushStats().as_dict().values())

    def test_untouched_database_reports_cleanly(self):
        db = WhiteSpaceDatabase(fresh_metro())
        snap = db.stats.as_dict()
        assert snap["hit_rate"] == 0.0 and snap["queries"] == 0

    def test_untouched_router_reports_cleanly(self):
        router = ShardRouter(fresh_metro(), num_shards=4)
        assert router.candidates_per_query() == 0.0
        snap = router.stats_dict()
        assert snap["candidates_per_query"] == 0.0
        assert snap["hit_rate"] == 0.0
        for shard in router.per_shard_stats():
            assert shard["hit_rate"] == 0.0

    def test_untouched_frontend_reports_cleanly(self):
        frontend = BatchFrontend(ShardRouter(fresh_metro(), num_shards=4))
        assert frontend.stats.shed_rate == 0.0
        assert frontend.query_batch([], 0.0) == []
        assert frontend.stats.as_dict()["shed_rate"] == 0.0


class TestZeroClientFleet:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_querystorm_with_no_clients_and_no_storm(self, engine):
        if engine == "vector":
            pytest.importorskip("numpy")
        report = simulate_querystorm(
            ShardRouter(fresh_metro(), num_shards=4),
            num_aps=5,
            num_clients=0,
            duration_us=2_000_000,
            tick_us=100_000,
            seed=7,
            offered_qps=0.0,
            engine=engine,
        )
        assert report["storm_queries"] == 0
        assert report["requeries"] == 0
        # Zero client-ticks: the connected fraction is 0, and the
        # violation-free fraction is the vacuous 1.0, not a crash.
        assert report["connected_fraction"] == 0.0
        assert report["violation_free_fraction"] == 1.0
        assert report["frontend"]["shed_rate"] == 0.0
        # The APs themselves query at boot (cold cache, all misses),
        # so hit_rate's numerator is 0 with a nonzero denominator.
        assert report["db"]["hit_rate"] == 0.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_fleet_telemetry_snapshot_is_clean(self, engine):
        if engine == "vector":
            pytest.importorskip("numpy")
        report = simulate_querystorm(
            ShardRouter(fresh_metro(), num_shards=4),
            num_aps=5,
            num_clients=0,
            duration_us=2_000_000,
            tick_us=100_000,
            seed=7,
            offered_qps=0.0,
            engine=engine,
            telemetry=MetricsRegistry(),
        )
        snap = report["telemetry"]
        assert snap["gauges"]["wsdb_hit_rate"] == 0.0
        assert snap["gauges"]["frontend_shed_rate"] == 0.0
        # A zero fleet still samples every tick fence.  The cumulative
        # query count stays pinned at the 5 AP boot queries.
        assert len(snap["series"]["t_us"]) == 21
        assert set(snap["series"]["queries"]) == {5.0}
        assert set(snap["series"]["cache_hits"]) == {0.0}

    def test_push_registry_len_without_subscribers(self):
        registry = PushRegistry(100.0)
        assert len(registry) == 0
        assert registry.stats.as_dict()["notifications"] == 0
