"""Tests for the columnar vector engine: bit-identical to the scalar
per-client loop — full-report equality, nested db/frontend/push stats
included — across seeds, fleet sizes, speeds, and cluster policies."""

import pytest

from repro.errors import SimulationError
from repro.wsdb.cluster.querystorm import simulate_querystorm
from repro.wsdb.cluster.router import ShardRouter
from repro.wsdb.mobility import ENGINES, simulate_roaming
from repro.wsdb.model import generate_metro
from repro.wsdb.service import WhiteSpaceDatabase

np = pytest.importorskip("numpy")


def fresh_db(seed: int, **kwargs) -> WhiteSpaceDatabase:
    # A fresh database per run: engines must not share cache state.
    metro = generate_metro(range(0, 10), seed=seed, extent_m=3_000.0)
    return WhiteSpaceDatabase(metro, **kwargs)


def fresh_router(seed: int, num_shards: int = 4, **kwargs) -> ShardRouter:
    metro = generate_metro(range(0, 10), seed=seed, extent_m=3_000.0)
    return ShardRouter(metro, num_shards=num_shards, **kwargs)


def roaming_pair(seed: int, db_kwargs=None, **kwargs):
    """(scalar, vector) roaming reports for one configuration."""
    reports = []
    for engine in ENGINES:
        db = fresh_db(seed, **(db_kwargs or {}))
        reports.append(
            simulate_roaming(db, engine=engine, seed=seed, **kwargs)
        )
    return reports


def querystorm_pair(seed: int, router_kwargs=None, **kwargs):
    """(scalar, vector) querystorm reports for one configuration."""
    reports = []
    for engine in ENGINES:
        router = fresh_router(seed, **(router_kwargs or {}))
        reports.append(
            simulate_querystorm(router, engine=engine, seed=seed, **kwargs)
        )
    return reports


def assert_identical(scalar: dict, vector: dict) -> None:
    """Full-report equality with a readable per-key diff on failure."""
    diffs = {
        key: (scalar[key], vector[key])
        for key in scalar
        if scalar[key] != vector[key]
    }
    assert set(scalar) == set(vector)
    assert not diffs, f"engine reports diverge: {sorted(diffs)}: {diffs}"


class TestRoamingEquivalence:
    """The tentpole property: same seed -> same report, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 13, 99])
    @pytest.mark.parametrize("num_clients", [1, 7, 40])
    def test_seeds_by_fleet_sizes(self, seed, num_clients):
        scalar, vector = roaming_pair(
            seed,
            num_aps=8,
            num_clients=num_clients,
            duration_us=90e6,
            mic_events=3,
        )
        assert_identical(scalar, vector)

    @pytest.mark.parametrize("speed_mps", [3.0, 14.0, 45.0])
    def test_speeds(self, speed_mps):
        # Slow fleets rarely cross cells (TTL-dominated re-checks);
        # fast fleets cross cells and waypoints constantly (the numpy
        # crossing fallback and the per-client RNG replay get work).
        scalar, vector = roaming_pair(
            13,
            num_aps=8,
            num_clients=12,
            duration_us=90e6,
            mic_events=2,
            speed_mps=speed_mps,
        )
        assert_identical(scalar, vector)

    def test_trigger_and_query_resolutions_can_differ(self):
        # recheck_m != cache_resolution_m: the re-check *trigger*
        # quantizes at 150 m while the *query* cell quantizes at the
        # database's own 100 m — the vector engine must compute both.
        scalar, vector = roaming_pair(
            13,
            num_aps=8,
            num_clients=10,
            duration_us=90e6,
            mic_events=2,
            recheck_m=150.0,
        )
        assert scalar["recheck_m"] == 150.0
        assert_identical(scalar, vector)

    def test_tiny_cache_forces_identical_eviction_order(self):
        # A 4-slot LRU evicts constantly; identical final stats mean
        # the batched path replayed the scalar engine's exact cache
        # access sequence, not merely the same totals.
        scalar, vector = roaming_pair(
            13,
            db_kwargs=dict(cache_capacity=4),
            num_aps=8,
            num_clients=15,
            duration_us=90e6,
            mic_events=2,
        )
        assert scalar["db"]["evictions"] > 0
        assert_identical(scalar, vector)

    def test_per_client_and_final_cells_are_tracked(self):
        _, vector = roaming_pair(
            7, num_aps=6, num_clients=5, duration_us=60e6
        )
        assert len(vector["per_client"]) == 5
        assert len(vector["final_cells"]) == 5
        assert all(
            isinstance(q, int) for cell in vector["final_cells"] for q in cell
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            simulate_roaming(
                fresh_db(0),
                num_aps=5,
                num_clients=3,
                duration_us=1e6,
                seed=0,
                engine="turbo",
            )


class TestQuerystormEquivalence:
    """The cluster twin: storm, admission, and push all stay in step."""

    @pytest.mark.parametrize("seed", [13, 99])
    def test_plain_storm(self, seed):
        scalar, vector = querystorm_pair(
            seed,
            num_aps=8,
            num_clients=15,
            duration_us=90e6,
            offered_qps=40.0,
            mic_events=3,
        )
        assert_identical(scalar, vector)

    def test_push_notifications(self, ):
        scalar, vector = querystorm_pair(
            13,
            num_aps=8,
            num_clients=15,
            duration_us=90e6,
            offered_qps=30.0,
            mic_events=5,
            push=True,
        )
        assert scalar["push_stats"]["notifications"] >= 0
        assert_identical(scalar, vector)

    @pytest.mark.parametrize("policy", ["reject", "serve-stale"])
    def test_rate_limited_storm(self, policy):
        # Token-bucket admission is order-sensitive; identical
        # shed/deferral counters prove the vector engine issues the
        # scalar engine's exact request sequence.
        scalar, vector = querystorm_pair(
            13,
            num_aps=8,
            num_clients=15,
            duration_us=90e6,
            offered_qps=60.0,
            mic_events=3,
            rate_limit_qps=20.0,
            policy=policy,
        )
        assert scalar["frontend"]["shed"] > 0
        assert_identical(scalar, vector)

    def test_push_under_rate_limit(self):
        scalar, vector = querystorm_pair(
            99,
            num_aps=8,
            num_clients=12,
            duration_us=90e6,
            offered_qps=60.0,
            mic_events=5,
            push=True,
            rate_limit_qps=20.0,
        )
        assert_identical(scalar, vector)

    def test_zero_clients_pure_storm(self):
        scalar, vector = querystorm_pair(
            7,
            num_aps=5,
            num_clients=0,
            duration_us=60e6,
            offered_qps=25.0,
        )
        assert scalar["per_client"] == ()
        assert scalar["final_cells"] == ()
        assert_identical(scalar, vector)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            simulate_querystorm(
                fresh_router(0),
                num_aps=5,
                num_clients=3,
                duration_us=1e6,
                seed=0,
                engine="columnar",
            )


class TestVectorFleetInternals:
    def test_response_interning_dedupes(self):
        from repro.wsdb.vector import VectorFleet
        from repro.wsdb.mobility import spawn_clients

        fleet = VectorFleet(spawn_clients(3, 0, "t", 1_000.0), 1_000.0)
        a = fleet.intern((1, 2, 3))
        b = fleet.intern((1, 2, 3))
        c = fleet.intern((4,))
        assert a == b
        assert c != a
        # Id 0 is the pre-seeded "never queried" empty response.
        assert fleet.intern(()) == 0

    def test_cells_match_scalar_quantization(self):
        from repro.wsdb.service import quantize_cell
        from repro.wsdb.vector import VectorFleet
        from repro.wsdb.mobility import spawn_clients

        clients = spawn_clients(50, 3, "t", 5_000.0)
        fleet = VectorFleet(clients, 5_000.0)
        qx, qy = fleet.cells(100.0)
        for i, c in enumerate(clients):
            assert (qx[i], qy[i]) == quantize_cell(c.x_m, c.y_m, 100.0)
